package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/trap-repro/trap/internal/sqlx"
)

// clause identifies where in the query a slot lives.
type clause int

const (
	clSelect clause = iota
	clFrom
	clJoin
	clWhere
	clGroupBy
	clHaving
	clOrderBy
)

// role identifies what a slot holds within its clause item.
type role int

const (
	roleReserved role = iota
	roleAgg
	roleColumn
	roleOperator
	roleValue
	roleConjunction
	roleTable
	roleExtension // the "(.*)?" slot of Figure 5
)

// slot is one position of the Constraint-Aware Reference Tree's leaf
// sequence. Slots are emitted in exact canonical token order so the
// decoder consumes one slot per SQL token (extension slots emit zero or
// more tokens).
type slot struct {
	clause clause
	role   role
	idx    int        // item index within the clause
	lit    sqlx.Token // the literal for forced slots
}

// Session drives the generation of one perturbed query q' from q under a
// perturbation constraint and edit budget ε, implementing Algorithm 1:
// it walks the reference tree's leaves, offers the legitimate vocabulary
// at each modifiable position, applies the chosen tokens to a mutable
// copy of the query, tracks the edit distance, and performs the
// look-ahead updates (a changed predicate column re-types its value leaf;
// columns already used in a clause are masked).
type Session struct {
	v          *Vocab
	constraint PerturbConstraint
	eps        int

	orig *sqlx.Query
	q    *sqlx.Query

	queue []slot
	pos   int
	edits int

	// stopID is the token closing an extension slot without insertion.
	stopID int

	// origCols caches the original query's column-token ids in
	// first-appearance order, built lazily on the first column slot of a
	// column-set-restricted constraint.
	origCols      []int
	origColsBuilt bool

	// usedCols masks per-clause duplicate columns (inner maps lazily
	// allocated, cleared on session reuse).
	usedCols [clOrderBy + 1]map[string]bool

	// pendingForcedValue marks filter indices whose column changed so the
	// upcoming value leaf must be re-sampled (its old literal is invalid).
	pendingForcedValue map[int]bool

	current *Step

	// stepBox backs every Step the session hands out: a step is only
	// alive between Next and the matching Choose (nothing downstream
	// retains the struct — the model captures only the Candidates slice),
	// so one reusable box replaces a per-slot allocation. forcedBuf is
	// the singleton candidate list of forced slots, which never reaches
	// the model at all.
	stepBox   Step
	forcedBuf [1]int

	// poolBuf is scratch for assembling column-candidate pools.
	poolBuf []int
}

// sessionPool recycles session shells — the slot queue, candidate
// scratch and mask maps — across decodes. A decode allocates only what
// escapes it: the perturbed query and the candidate slices the model's
// tape captures.
var sessionPool = sync.Pool{New: func() any { return new(Session) }}

// Step is the decoding decision at one position: the candidate token ids
// (singleton when the token is forced) and the index within Candidates of
// the "no change" choice (-1 when a change is forced by a look-ahead
// update).
type Step struct {
	Candidates []int
	KeepIdx    int
	slotRef    slot
}

// Forced reports whether the step offers no real choice.
func (st *Step) Forced() bool { return len(st.Candidates) == 1 }

// NewSession starts a perturbation session for q, reusing a pooled
// session shell when one is available.
func NewSession(v *Vocab, q *sqlx.Query, c PerturbConstraint, eps int) *Session {
	s := sessionPool.Get().(*Session)
	s.v, s.constraint, s.eps = v, c, eps
	s.orig, s.q = q, q.Clone()
	s.queue = s.queue[:0]
	s.pos, s.edits = 0, 0
	s.stopID = v.ID(sqlx.Token{Type: sqlx.TokReserved, Text: "<stop>"})
	s.origCols = s.origCols[:0]
	s.origColsBuilt = false
	for _, m := range s.usedCols {
		clear(m)
	}
	clear(s.pendingForcedValue)
	s.current = nil
	s.buildQueue()
	return s
}

// Release returns the session shell to the pool. Callers must be done
// with every Step the session handed out; the perturbed query returned
// by Result is independently allocated and unaffected.
func (s *Session) Release() {
	s.v, s.orig, s.q = nil, nil, nil
	s.current = nil
	sessionPool.Put(s)
}

func res(text string) sqlx.Token { return sqlx.Token{Type: sqlx.TokReserved, Text: text} }

// buildQueue lays out the slot sequence in canonical token order,
// inserting extension slots at the end of the SELECT and WHERE clauses
// when the constraint allows insertions.
func (s *Session) buildQueue() {
	q := s.q
	add := func(sl slot) { s.queue = append(s.queue, sl) }
	forced := func(cl clause, t sqlx.Token) { add(slot{clause: cl, role: roleReserved, lit: t}) }

	forced(clSelect, res("SELECT"))
	for i, it := range q.Select {
		if i > 0 {
			forced(clSelect, res(","))
		}
		if it.Agg != "" {
			add(slot{clause: clSelect, role: roleAgg, idx: i})
			forced(clSelect, res("("))
			add(slot{clause: clSelect, role: roleColumn, idx: i})
			forced(clSelect, res(")"))
		} else {
			add(slot{clause: clSelect, role: roleColumn, idx: i})
		}
	}
	if s.constraint.allowsExtensions() {
		add(slot{clause: clSelect, role: roleExtension})
	}
	forced(clFrom, res("FROM"))
	for i, t := range q.From {
		if i > 0 {
			forced(clFrom, res(","))
		}
		add(slot{clause: clFrom, role: roleTable, idx: i, lit: sqlx.Token{Type: sqlx.TokTable, Text: t.Name}})
	}
	if len(q.Joins) > 0 || len(q.Filters) > 0 || s.constraint.allowsExtensions() {
		forced(clWhere, res("WHERE"))
	}
	for i, j := range q.Joins {
		if i > 0 {
			forced(clJoin, sqlx.Token{Type: sqlx.TokConjunction, Text: "AND"})
		}
		forced(clJoin, sqlx.Token{Type: sqlx.TokColumn, Text: j.Left.String()})
		forced(clJoin, sqlx.Token{Type: sqlx.TokOperator, Text: "="})
		forced(clJoin, sqlx.Token{Type: sqlx.TokColumn, Text: j.Right.String()})
	}
	for i := range q.Filters {
		if i > 0 {
			add(slot{clause: clWhere, role: roleConjunction, idx: i})
		} else if len(q.Joins) > 0 {
			// The connective between the join block and the first filter
			// is structural (joins stay AND-connected) and not perturbable.
			forced(clWhere, sqlx.Token{Type: sqlx.TokConjunction, Text: "AND"})
		}
		add(slot{clause: clWhere, role: roleColumn, idx: i})
		add(slot{clause: clWhere, role: roleOperator, idx: i})
		add(slot{clause: clWhere, role: roleValue, idx: i})
	}
	if s.constraint.allowsExtensions() {
		add(slot{clause: clWhere, role: roleExtension})
	}
	if len(q.GroupBy) > 0 {
		forced(clGroupBy, res("GROUP"))
		forced(clGroupBy, res("BY"))
		for i := range q.GroupBy {
			if i > 0 {
				forced(clGroupBy, res(","))
			}
			add(slot{clause: clGroupBy, role: roleColumn, idx: i})
		}
	}
	if q.Having != nil {
		forced(clHaving, res("HAVING"))
		add(slot{clause: clHaving, role: roleAgg})
		forced(clHaving, res("("))
		add(slot{clause: clHaving, role: roleColumn})
		forced(clHaving, res(")"))
		add(slot{clause: clHaving, role: roleOperator})
		add(slot{clause: clHaving, role: roleValue})
	}
	if len(q.OrderBy) > 0 {
		forced(clOrderBy, res("ORDER"))
		forced(clOrderBy, res("BY"))
		for i := range q.OrderBy {
			if i > 0 {
				forced(clOrderBy, res(","))
			}
			add(slot{clause: clOrderBy, role: roleColumn, idx: i})
		}
	}
}

// EditDistanceUsed returns the edits consumed so far.
func (s *Session) EditDistanceUsed() int { return s.edits }

// budget returns the remaining edit budget.
func (s *Session) budget() int { return s.eps - s.edits }

// Next returns the decoding step at the current position, or ok=false when
// the walk is complete.
func (s *Session) Next() (*Step, bool) {
	if s.current != nil {
		return s.current, true
	}
	if s.pos >= len(s.queue) {
		return nil, false
	}
	sl := s.queue[s.pos]
	st := s.stepFor(sl)
	s.current = st
	return st, true
}

// origToken returns the token currently at the slot's position in q.
func (s *Session) origToken(sl slot) sqlx.Token {
	q := s.q
	switch {
	case sl.role == roleReserved || sl.role == roleTable:
		return sl.lit
	case sl.clause == clSelect && sl.role == roleAgg:
		return sqlx.Token{Type: sqlx.TokAggregator, Text: q.Select[sl.idx].Agg}
	case sl.clause == clSelect && sl.role == roleColumn:
		return sqlx.Token{Type: sqlx.TokColumn, Text: q.Select[sl.idx].Col.String()}
	case sl.clause == clWhere && sl.role == roleConjunction:
		return sqlx.Token{Type: sqlx.TokConjunction, Text: string(q.Conjs[sl.idx-1])}
	case sl.clause == clWhere && sl.role == roleColumn:
		return sqlx.Token{Type: sqlx.TokColumn, Text: q.Filters[sl.idx].Col.String()}
	case sl.clause == clWhere && sl.role == roleOperator:
		return sqlx.Token{Type: sqlx.TokOperator, Text: q.Filters[sl.idx].Op}
	case sl.clause == clWhere && sl.role == roleValue:
		return sqlx.Token{Type: sqlx.TokValue, Text: q.Filters[sl.idx].Val.String()}
	case sl.clause == clGroupBy:
		return sqlx.Token{Type: sqlx.TokColumn, Text: q.GroupBy[sl.idx].String()}
	case sl.clause == clHaving && sl.role == roleAgg:
		return sqlx.Token{Type: sqlx.TokAggregator, Text: q.Having.Agg}
	case sl.clause == clHaving && sl.role == roleColumn:
		return sqlx.Token{Type: sqlx.TokColumn, Text: q.Having.Col.String()}
	case sl.clause == clHaving && sl.role == roleOperator:
		return sqlx.Token{Type: sqlx.TokOperator, Text: q.Having.Op}
	case sl.clause == clHaving && sl.role == roleValue:
		return sqlx.Token{Type: sqlx.TokValue, Text: q.Having.Val.String()}
	case sl.clause == clOrderBy:
		return sqlx.Token{Type: sqlx.TokColumn, Text: q.OrderBy[sl.idx].String()}
	}
	panic("core: unhandled slot")
}

// forced fills the session's step box with the single-candidate step of
// a slot offering no choice.
func (s *Session) forced(id int, sl slot) *Step {
	s.forcedBuf[0] = id
	s.stepBox = Step{Candidates: s.forcedBuf[:1], KeepIdx: 0, slotRef: sl}
	return &s.stepBox
}

// stepFor computes the candidate set of a slot, applying the constraint
// rules of Table I, the remaining edit budget, and the dynamic masks.
func (s *Session) stepFor(sl slot) *Step {
	if sl.role == roleExtension {
		return s.extensionStep(sl)
	}
	orig := s.origToken(sl)
	origID := s.v.ID(orig)
	single := s.forced(origID, sl)

	if sl.role == roleReserved || sl.role == roleTable || sl.clause == clJoin {
		return single
	}
	var region []int
	needsBudget := 1
	switch sl.role {
	case roleValue:
		// Values are modifiable under every constraint.
		var col sqlx.ColumnRef
		if sl.clause == clHaving {
			col = s.q.Having.Col
		} else {
			col = s.q.Filters[sl.idx].Col
		}
		region = s.v.ValuesRegion(col)
		if s.pendingForcedValue[sl.idx] && sl.clause == clWhere {
			// Look-ahead re-typing: the column changed, the old literal is
			// invalid, a new value must be drawn (edit already accounted).
			// The region slice is vocab-owned and read-only downstream.
			s.stepBox = Step{Candidates: region, KeepIdx: -1, slotRef: sl}
			return &s.stepBox
		}
	case roleColumn:
		if !s.constraint.allowsColumns() {
			return single
		}
		// Strict-SQL grouping: in a grouped query, plain SELECT columns
		// and the GROUP BY columns are locked together and not perturbed
		// (only aggregate arguments, predicates and ORDER BY move).
		if len(s.q.GroupBy) > 0 {
			if sl.clause == clGroupBy {
				return single
			}
			if sl.clause == clSelect && s.q.Select[sl.idx].Agg == "" {
				return single
			}
		}
		region = s.columnCandidates(sl)
		if sl.clause == clWhere {
			// Changing a predicate column forces a value change too.
			needsBudget = 2
		}
	case roleOperator:
		if !s.constraint.allowsOperators() {
			return single
		}
		region = s.v.Region("operator")
	case roleAgg:
		if !s.constraint.allowsOperators() {
			return single
		}
		region = s.v.Region("aggregator")
	case roleConjunction:
		if !s.constraint.allowsOperators() {
			return single
		}
		region = s.v.Region("conjunction")
	}
	if s.budget() < needsBudget || len(region) == 0 {
		return single
	}
	// Candidates: the region with the original token included (kept
	// choices are free; any other choice costs edits). The slice is
	// freshly allocated per step — the model's tape captures it. Vocab
	// regions are duplicate-free by construction, so the linear dup scan
	// only guards the multi-table column pools.
	cands := make([]int, 0, len(region)+1)
	keep := -1
	for _, id := range region {
		dup := false
		for _, c := range cands {
			if c == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		cands = append(cands, id)
		if id == origID {
			keep = len(cands) - 1
		}
	}
	if keep < 0 {
		cands = append(cands, origID)
		keep = len(cands) - 1
	}
	s.stepBox = Step{Candidates: cands, KeepIdx: keep, slotRef: sl}
	return &s.stepBox
}

// columnCandidates returns the legal replacement columns for a column
// slot: the original column set under ColumnConsistent, or any column of
// the query's tables under SharedTable, minus columns already used in the
// same clause.
func (s *Session) columnCandidates(sl slot) []int {
	pool := s.poolBuf[:0]
	if s.constraint.columnSetRestricted() {
		if !s.origColsBuilt {
			s.origColsBuilt = true
			for _, col := range s.orig.Columns() {
				s.origCols = append(s.origCols,
					s.v.ID(sqlx.Token{Type: sqlx.TokColumn, Text: col.String()}))
			}
		}
		pool = append(pool, s.origCols...)
	} else {
		for _, t := range s.q.From {
			pool = append(pool, s.v.ColumnsRegion(t.Name)...)
		}
	}
	s.poolBuf = pool
	// Filter in place: out trails pool, so this reuses the same scratch.
	// The result is copied into the step's candidate slice by stepFor.
	used := s.usedCols[sl.clause]
	out := pool[:0]
	for _, id := range pool {
		if used != nil && used[s.v.Token(id).Text] {
			continue
		}
		out = append(out, id)
	}
	return out
}

// extensionStep builds the "(.*)?" decision: add a column (payload or new
// predicate) or emit <stop>. Insertions cost 2 tokens in SELECT (comma +
// column) and 4 in WHERE (conjunction + column + operator + value).
func (s *Session) extensionStep(sl slot) *Step {
	need := 2
	if sl.clause == clWhere {
		need = 4
	}
	if s.budget() < need {
		return s.forced(s.stopID, sl)
	}
	// A new plain payload column in a grouped query would violate strict
	// SQL grouping.
	if sl.clause == clSelect && len(s.q.GroupBy) > 0 {
		return s.forced(s.stopID, sl)
	}
	pool := s.poolBuf[:0]
	for _, t := range s.q.From {
		pool = append(pool, s.v.ColumnsRegion(t.Name)...)
	}
	s.poolBuf = pool
	used := s.usedCols[sl.clause]
	cands := make([]int, 1, len(pool)+1)
	cands[0] = s.stopID
	for _, id := range pool {
		if used != nil && used[s.v.Token(id).Text] {
			continue
		}
		cands = append(cands, id)
	}
	s.stepBox = Step{Candidates: cands, KeepIdx: 0, slotRef: sl}
	return &s.stepBox
}

// Choose applies the token with the given id (which must be one of the
// current step's candidates) and advances the walk.
func (s *Session) Choose(id int) error {
	st, ok := s.Next()
	if !ok {
		return fmt.Errorf("core: session already complete")
	}
	found := false
	for _, c := range st.Candidates {
		if c == id {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("core: token %d not in candidate set", id)
	}
	sl := st.slotRef
	tok := s.v.Token(id)
	changed := st.KeepIdx < 0 || st.Candidates[st.KeepIdx] != id

	if sl.role == roleExtension {
		s.applyExtension(sl, id, tok)
	} else if changed {
		s.applyChange(sl, tok)
		if !(sl.clause == clWhere && sl.role == roleValue && s.pendingForcedValue[sl.idx]) {
			s.edits++
		}
	}
	if sl.clause == clWhere && sl.role == roleValue {
		delete(s.pendingForcedValue, sl.idx)
	}
	// Track used columns per clause for duplicate masking.
	if sl.role == roleColumn || (sl.role == roleExtension && id != s.stopID) {
		if s.usedCols[sl.clause] == nil {
			s.usedCols[sl.clause] = map[string]bool{}
		}
		s.usedCols[sl.clause][tok.Text] = true
	}
	s.pos++
	s.current = nil
	return nil
}

// applyChange mutates the working query at the slot's position.
func (s *Session) applyChange(sl slot, tok sqlx.Token) {
	q := s.q
	// The working query may have been rendered or costed mid-walk; drop
	// its memoized text/analysis before mutating (see sqlx.Query).
	defer q.Invalidate()
	switch {
	case sl.clause == clSelect && sl.role == roleAgg:
		q.Select[sl.idx].Agg = tok.Text
	case sl.clause == clSelect && sl.role == roleColumn:
		q.Select[sl.idx].Col = mustColRef(tok.Text)
	case sl.clause == clWhere && sl.role == roleConjunction:
		q.Conjs[sl.idx-1] = sqlx.Conj(tok.Text)
	case sl.clause == clWhere && sl.role == roleColumn:
		q.Filters[sl.idx].Col = mustColRef(tok.Text)
		s.setPendingForced(sl.idx)
		s.edits++ // the forced value change is paid for here
	case sl.clause == clWhere && sl.role == roleOperator:
		q.Filters[sl.idx].Op = tok.Text
	case sl.clause == clWhere && sl.role == roleValue:
		q.Filters[sl.idx].Val = mustDatum(tok.Text)
	case sl.clause == clGroupBy:
		q.GroupBy[sl.idx] = mustColRef(tok.Text)
	case sl.clause == clHaving && sl.role == roleAgg:
		q.Having.Agg = tok.Text
	case sl.clause == clHaving && sl.role == roleColumn:
		q.Having.Col = mustColRef(tok.Text)
	case sl.clause == clHaving && sl.role == roleOperator:
		q.Having.Op = tok.Text
	case sl.clause == clHaving && sl.role == roleValue:
		q.Having.Val = mustDatum(tok.Text)
	case sl.clause == clOrderBy:
		q.OrderBy[sl.idx] = mustColRef(tok.Text)
	default:
		panic("core: unmodifiable slot changed")
	}
}

// applyExtension inserts a payload column or starts a new predicate.
func (s *Session) applyExtension(sl slot, id int, tok sqlx.Token) {
	if id == s.stopID {
		return
	}
	q := s.q
	defer q.Invalidate()
	if sl.clause == clSelect {
		q.Select = append(q.Select, sqlx.SelectItem{Col: mustColRef(tok.Text)})
		s.edits += 2
		return
	}
	// WHERE extension: append the predicate now and queue its operator and
	// value slots right after the current position.
	fi := len(q.Filters)
	col := mustColRef(tok.Text)
	defVal := sqlx.NumDatum(0)
	if region := s.v.ValuesRegion(col); len(region) > 0 {
		defVal = mustDatum(s.v.Token(region[0]).Text)
	}
	if len(q.Filters) > 0 || len(q.Joins) > 0 {
		if len(q.Filters) > 0 {
			q.Conjs = append(q.Conjs, sqlx.ConjAnd)
		}
	}
	q.Filters = append(q.Filters, sqlx.Predicate{Col: col, Op: sqlx.OpEq, Val: defVal})
	s.edits += 4
	rest := append([]slot{
		{clause: clWhere, role: roleOperator, idx: fi},
		{clause: clWhere, role: roleValue, idx: fi},
	}, s.queue[s.pos+1:]...)
	s.queue = append(s.queue[:s.pos+1], rest...)
	// The operator/value slots may refine the defaults without extra cost.
	s.setPendingForced(fi)
}

// setPendingForced lazily allocates the pending-value mask: most decodes
// never change a predicate column, so the map usually stays nil.
func (s *Session) setPendingForced(i int) {
	if s.pendingForcedValue == nil {
		s.pendingForcedValue = map[int]bool{}
	}
	s.pendingForcedValue[i] = true
}

// Result returns the perturbed query and the edits consumed. It panics if
// the walk is not complete.
func (s *Session) Result() (*sqlx.Query, int) {
	if s.pos < len(s.queue) {
		panic("core: session incomplete")
	}
	return s.q, s.edits
}

func mustColRef(text string) sqlx.ColumnRef {
	for i := 0; i < len(text); i++ {
		if text[i] == '.' {
			return sqlx.ColumnRef{Table: text[:i], Column: text[i+1:]}
		}
	}
	panic("core: malformed column token " + text)
}

// mustDatum inverts Datum.String: value tokens are rendered SQL
// literals — quoted strings with ” escapes, or bare numbers.
func mustDatum(text string) sqlx.Datum {
	if len(text) >= 2 && text[0] == '\'' && text[len(text)-1] == '\'' {
		return sqlx.StrDatum(strings.ReplaceAll(text[1:len(text)-1], "''", "'"))
	}
	n, err := strconv.ParseFloat(text, 64)
	if err != nil {
		panic("core: malformed value token " + text)
	}
	return sqlx.NumDatum(n)
}
