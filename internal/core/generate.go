package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/trace"
	"github.com/trap-repro/trap/internal/workload"
)

// DecStep records one actionable decoding decision for training: the
// logits tensor over the candidates and the index chosen.
type DecStep struct {
	Logits *nn.Tensor
	Chosen int
}

// DecodeResult is the outcome of perturbing one query.
type DecodeResult struct {
	Query   *sqlx.Query
	Edits   int
	Steps   []DecStep
	Choices []int // chosen token ids at actionable steps (for replay)
}

// Decode generates a perturbed query from q using the model's policy,
// walking the Constraint-Aware Reference Tree (Algorithm 1). With
// sample=true tokens are drawn from the masked distribution; otherwise
// greedy argmax is used (the self-critic baseline). The graph g controls
// whether gradients are recorded.
func Decode(g *nn.Graph, m Scorer, v *Vocab, q *sqlx.Query, c PerturbConstraint, eps int, sample bool, rng *rand.Rand) (*DecodeResult, error) {
	sess := NewSession(v, q, c, eps)
	st := m.Begin(g, v.Encode(q))
	res := &DecodeResult{}
	for {
		step, ok := sess.Next()
		if !ok {
			break
		}
		var chosenID int
		if step.Forced() {
			chosenID = step.Candidates[0]
		} else {
			logits := m.Score(g, st, step.Candidates)
			var pos int
			if sample {
				pos = samplePos(logits, rng)
			} else {
				pos = argmaxPos(logits)
			}
			chosenID = step.Candidates[pos]
			res.Steps = append(res.Steps, DecStep{Logits: logits, Chosen: pos})
			res.Choices = append(res.Choices, chosenID)
		}
		if err := sess.Choose(chosenID); err != nil {
			return nil, err
		}
		st = m.Advance(g, st, chosenID)
	}
	out, edits := sess.Result()
	sess.Release()
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: generated invalid query: %w", err)
	}
	res.Query = out
	res.Edits = edits
	return res, nil
}

// Replay re-decodes q making the recorded choices, returning the logits
// steps for teacher-forced training (Equation 7).
func Replay(g *nn.Graph, m Scorer, v *Vocab, q *sqlx.Query, c PerturbConstraint, eps int, choices []int) (*DecodeResult, error) {
	sess := NewSession(v, q, c, eps)
	st := m.Begin(g, v.Encode(q))
	res := &DecodeResult{}
	k := 0
	for {
		step, ok := sess.Next()
		if !ok {
			break
		}
		var chosenID int
		if step.Forced() {
			chosenID = step.Candidates[0]
		} else {
			if k >= len(choices) {
				return nil, fmt.Errorf("core: replay ran out of choices")
			}
			chosenID = choices[k]
			pos := -1
			for i, c := range step.Candidates {
				if c == chosenID {
					pos = i
					break
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("core: replay choice %d not in candidates", chosenID)
			}
			logits := m.Score(g, st, step.Candidates)
			res.Steps = append(res.Steps, DecStep{Logits: logits, Chosen: pos})
			res.Choices = append(res.Choices, chosenID)
			k++
		}
		if err := sess.Choose(chosenID); err != nil {
			return nil, err
		}
		st = m.Advance(g, st, chosenID)
	}
	out, edits := sess.Result()
	sess.Release()
	res.Query = out
	res.Edits = edits
	return res, nil
}

// PerturbWorkload decodes every query of w, preserving weights.
// Cancellation is honored between queries.
func PerturbWorkload(ctx context.Context, m Scorer, v *Vocab, w *workload.Workload, c PerturbConstraint, eps int, sample bool, rng *rand.Rand) (*workload.Workload, error) {
	return perturbWorkloadOn(ctx, nn.NewGraph(false), m, v, w, c, eps, sample, rng)
}

// perturbWorkloadOn is PerturbWorkload decoding on a caller-owned graph,
// so hot callers (the framework's Generate paths) keep one persistent
// inference graph whose arena stays warm across calls. The graph is
// reset between queries and left reset on return.
func perturbWorkloadOn(ctx context.Context, g *nn.Graph, m Scorer, v *Vocab, w *workload.Workload, c PerturbConstraint, eps int, sample bool, rng *rand.Rand) (out *workload.Workload, err error) {
	ctx, tsp := trace.Start(ctx, "core.perturb_workload")
	tsp.Int("queries", int64(len(w.Items)))
	tsp.Bool("sampled", sample)
	defer func() { tsp.Fail(err); tsp.End() }()
	defer g.Reset()
	out = &workload.Workload{}
	for _, it := range w.Items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := Decode(g, m, v, it.Query, c, eps, sample, rng)
		if err != nil {
			return nil, err
		}
		out.Items = append(out.Items, workload.Item{Query: r.Query, Weight: it.Weight})
		g.Reset() // recycle the decode's tensors into the arena
	}
	return out, nil
}

// probScratch pools the sampling distribution so hot decode loops don't
// allocate a fresh probability slice per actionable step.
var probScratch = sync.Pool{New: func() any { return new([]float64) }}

func samplePos(logits *nn.Tensor, rng *rand.Rand) int {
	bp := probScratch.Get().(*[]float64)
	p := nn.SoftmaxInto(*bp, logits)
	u := rng.Float64()
	pos := len(p) - 1
	acc := 0.0
	for i, pi := range p {
		acc += pi
		if u <= acc {
			pos = i
			break
		}
	}
	*bp = p
	probScratch.Put(bp)
	return pos
}

func argmaxPos(logits *nn.Tensor) int {
	best := 0
	for i := 1; i < logits.R; i++ {
		if logits.W[i] > logits.W[best] {
			best = i
		}
	}
	return best
}
