package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/par"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/telemetry"
	"github.com/trap-repro/trap/internal/trace"
	"github.com/trap-repro/trap/internal/workload"
)

// Generator-training metrics, aggregated across frameworks.
var (
	mPretrainEpochs     = obs.Default().Counter("trap_pretrain_epochs_total")
	mPretrainEpochSecs  = obs.Default().Histogram("trap_pretrain_epoch_seconds")
	mRLEpochs           = obs.Default().Counter("trap_rl_epochs_total")
	mRLEpochSecs        = obs.Default().Histogram("trap_rl_epoch_seconds")
	mRLLastReward       = obs.Default().Gauge("trap_rl_last_mean_reward")
	mGeneratedWorkloads = obs.Default().Counter("trap_generated_workloads_total")
)

// Framework ties a generation model to a perturbation constraint, an edit
// budget and (optionally) a learned utility model, and implements the
// two-phase training paradigm: index-advisor-independent pretraining
// (Section IV-C) followed by reinforced perturbation policy learning with
// the self-critic baseline (Section IV-B).
//
// # Concurrency and cancellation
//
// Every long-running method takes a context and checks it cooperatively
// at epoch and workload (pair) granularity, so deadlines and shutdown
// interrupt training instead of waiting it out. A Framework is safe for
// concurrent use: an internal mutex serializes model access, with
// training holding it per workload so concurrent Generate calls
// interleave at workload boundaries. Note that GenerateSampled draws
// from the shared RNG and therefore perturbs training determinism when
// run concurrently with RLTrain; greedy Generate and the seeded
// GenerateSeeded do not.
//
// Within one training step, the B sampled trajectories of Equation 6
// fan out across a bounded rollout pool (RolloutWorkers goroutines,
// GOMAXPROCS by default): each trajectory decodes forward on its own
// graph with its own RNG stream and computes its reward through the
// advisor and utility model, which are read-only at that point. The
// gradient reduce that follows is strictly sequential in trajectory
// order, so trained parameters are bit-identical for every worker count.
//
// # Determinism and checkpoints
//
// The RNG is re-seeded deterministically at every RL epoch boundary (a
// mix of the construction seed and the epoch index), and every sampled
// trajectory derives its private RNG stream from (epoch seed, workload
// index, trajectory index), which makes an epoch's randomness
// independent of everything that ran before it. That is what makes
// checkpoint/resume exact: a run restored from SaveCheckpoint and
// continued produces bit-identical parameters to an uninterrupted run
// with the same seed.
type Framework struct {
	Model      Scorer
	Vocab      *Vocab
	Constraint PerturbConstraint
	Eps        int
	// Utility is the learned index utility model; nil uses raw what-if
	// estimates instead (the "w/o Cost Model" ablation of Figure 8a).
	Utility *UtilityModel
	// Theta is the θ threshold of Definition 3.3: workloads where the
	// advisor's utility does not exceed it are skipped in training.
	Theta float64
	// LR is the Adam learning rate (the paper uses 0.001).
	LR float64
	// Batch is the number of sampled trajectories per workload in the
	// policy-gradient loss (the batch B of Equation 6).
	Batch int
	// RolloutWorkers bounds the trajectory rollout pool (0: GOMAXPROCS;
	// 1: sequential). The trained parameters are bit-identical for every
	// value — the pool only changes wall-clock time.
	RolloutWorkers int

	// StartEpoch is the first RL epoch RLTrain runs (set by
	// LoadCheckpoint so resumed jobs skip completed epochs).
	StartEpoch int
	// EpochHook, when non-nil, is called after every completed RL epoch
	// with the epoch index — the checkpointing hook. It runs with no
	// framework lock held, so it may call SaveCheckpoint. A non-nil
	// return aborts training with that error.
	EpochHook func(epoch int) error
	// Inject is the fault-injection hook; nil (the default) disables
	// injection entirely.
	Inject faultinject.Injector

	seed int64
	rng  *rand.Rand
	// opt is the RL optimizer; it persists across RLTrain calls (and
	// through checkpoints) so Adam's moment estimates survive a resume.
	opt *nn.Adam

	// mu serializes model parameters, the RNG and uCache between
	// training steps and concurrent Generate calls.
	mu sync.Mutex

	// Persistent graphs (a sync.Pool is cleared by every GC cycle, which
	// re-triggered the arena's warm-up allocations mid-training): greedyG
	// serves the sequential greedy prologue and genG the Generate calls,
	// both under mu; rollG[b] is sampled trajectory b's private tape —
	// during a rollout fan-out each worker owns exactly the entries it
	// was dealt, so the hot path shares no allocator state across
	// workers and allocation volume does not scale with worker count.
	greedyG *nn.Graph
	genG    *nn.Graph
	rollG   []*nn.Graph

	// uCache memoizes the advisor's utility on original workloads during
	// RL training (deterministic, so safe to reuse across trajectories).
	uCache map[string]float64
}

// NewFramework builds a framework with paper defaults (θ=0.1, ε=5).
func NewFramework(m Scorer, v *Vocab, c PerturbConstraint, seed int64) *Framework {
	return &Framework{
		Model:      m,
		Vocab:      v,
		Constraint: c,
		Eps:        5,
		Theta:      0.1,
		LR:         0.001,
		Batch:      2,
		seed:       seed,
		rng:        rand.New(rand.NewSource(seed)),
		uCache:     map[string]float64{},
	}
}

// epochSeed derives the deterministic RNG seed for one RL epoch.
func (f *Framework) epochSeed(epoch int) int64 {
	return f.seed*1_000_003 + int64(epoch)*7_919 + 1
}

// Pretrain runs the index-advisor-independent phase (Equation 7): random
// perturbation pairs are synthesized from the generator and the model is
// trained to reproduce them by teacher forcing through the reference
// tree. Afterwards the decoder is re-initialized — only the encoder's
// SQL understanding transfers to the RL phase. Returns the per-epoch
// mean loss trace. Cancellation is honored between epochs and between
// pairs.
func (f *Framework) Pretrain(ctx context.Context, gen *workload.Generator, pairs, epochs int) (losses []float64, err error) {
	ctx, tsp := trace.Start(ctx, "core.pretrain")
	tsp.Int("pairs", int64(pairs))
	tsp.Int("epochs", int64(epochs))
	defer func() { tsp.Fail(err); tsp.End() }()
	rnd := RandomModel{}
	type pair struct {
		q       *sqlx.Query
		choices []int
	}
	var data []pair
	f.mu.Lock()
	g := nn.NewGraph(false)
	for len(data) < pairs {
		if err := ctx.Err(); err != nil {
			f.mu.Unlock()
			return nil, err
		}
		q := gen.Query()
		r, err := Decode(g, rnd, f.Vocab, q, f.Constraint, f.Eps, true, f.rng)
		if err != nil {
			f.mu.Unlock()
			return nil, err
		}
		data = append(data, pair{q: q, choices: r.Choices})
		g.Reset() // recycle the decode's tensors into the arena
	}
	params := f.Model.Params()
	f.mu.Unlock()
	if params == nil {
		return nil, fmt.Errorf("core: model %s has no parameters to pretrain", f.Model.Name())
	}
	opt := nn.NewAdam(f.LR)
	gt := nn.NewGraph(true)
	epoch := func() (float64, int, error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		total, steps := 0.0, 0
		for _, d := range data {
			if err := ctx.Err(); err != nil {
				return 0, 0, err
			}
			gt.Reset() // one graph per epoch loop: the arena stays warm
			r, err := Replay(gt, f.Model, f.Vocab, d.q, f.Constraint, f.Eps, d.choices)
			if err != nil {
				return 0, 0, err
			}
			for _, st := range r.Steps {
				total += nn.CrossEntropy(st.Logits, st.Chosen, 1)
				steps++
			}
			gt.Backward()
			params.ClipGrads(5)
			opt.Step(params)
		}
		return total, steps, nil
	}
	for ep := 0; ep < epochs; ep++ {
		if err := ctx.Err(); err != nil {
			return losses, err
		}
		if err := faultinject.Fire(f.Inject, faultinject.PointPretrainEpoch); err != nil {
			return losses, err
		}
		_, esp := trace.Start(ctx, "pretrain.epoch")
		esp.Int("epoch", int64(ep))
		sp := obs.StartSpan(mPretrainEpochSecs)
		total, steps, err := epoch()
		if err != nil {
			esp.Fail(err)
			esp.End()
			return losses, err
		}
		if steps > 0 {
			mean := total / float64(steps)
			losses = append(losses, mean)
			esp.Float("mean_loss", mean)
			esp.Int("steps", int64(steps))
			telemetry.FromContext(ctx).Series("pretrain_loss").Append(int64(ep+1), mean)
		}
		sp.End()
		esp.End()
		mPretrainEpochs.Inc()
	}
	// Encoder-only transfer: refresh the decoder for RL exploration.
	f.mu.Lock()
	f.Model.ResetDecoder(f.rng)
	f.mu.Unlock()
	return losses, nil
}

// utilityOf evaluates u(W, d, ·) for a configuration against a baseline,
// with the learned model when available and what-if estimates otherwise.
func (f *Framework) utilityOf(ctx context.Context, e *engine.Engine, w *workload.Workload, cfg, base schema.Config) float64 {
	if f.Utility != nil {
		u, err := f.Utility.UtilityCtx(ctx, e, w, cfg, base)
		if err != nil {
			return 0
		}
		return u
	}
	cb, err := workload.CostCtx(ctx, e, w, base, engine.ModeEstimated)
	if err != nil || cb <= 0 {
		return 0
	}
	ci, err := workload.CostCtx(ctx, e, w, cfg, engine.ModeEstimated)
	if err != nil {
		return 0
	}
	return 1 - ci/cb
}

// RewardOf computes the training reward r = IUDR for a perturbed
// workload against an advisor (Equation 6's r).
func (f *Framework) RewardOf(ctx context.Context, e *engine.Engine, adv advisor.Advisor, baseAdv advisor.Advisor, c advisor.Constraint, w, pert *workload.Workload) (float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rewardOf(ctx, e, adv, baseAdv, c, w, pert)
}

// rewardOf is RewardOf with f.mu already held (the RL loop calls it from
// inside a locked training step).
func (f *Framework) rewardOf(ctx context.Context, e *engine.Engine, adv advisor.Advisor, baseAdv advisor.Advisor, c advisor.Constraint, w, pert *workload.Workload) (float64, error) {
	u, err := f.originalUtility(ctx, e, adv, baseAdv, c, w)
	if err != nil {
		return 0, err
	}
	return f.perturbedReward(ctx, e, adv, baseAdv, c, u, pert)
}

// baselineFor computes the Ib baseline configuration for a target
// workload (nil baseline advisor: the null configuration).
func (f *Framework) baselineFor(e *engine.Engine, baseAdv advisor.Advisor, c advisor.Constraint, target *workload.Workload) schema.Config {
	if baseAdv == nil {
		return nil
	}
	cfg, err := baseAdv.Recommend(e, target, c)
	if err != nil {
		return nil
	}
	return cfg
}

// originalUtility returns the advisor's memoized utility on the original
// workload, erroring when it does not exceed θ (Definition 3.3 — such
// workloads are skipped). It reads and writes uCache, so callers must
// hold f.mu; the RL loop calls it once per workload before rollouts fan
// out, which is also what warms any lazily initialized advisor state.
func (f *Framework) originalUtility(ctx context.Context, e *engine.Engine, adv advisor.Advisor, baseAdv advisor.Advisor, c advisor.Constraint, w *workload.Workload) (float64, error) {
	if f.uCache == nil {
		f.uCache = map[string]float64{}
	}
	key := adv.Name() + "|" + w.Key()
	u, ok := f.uCache[key]
	if !ok {
		cfgW, err := adv.Recommend(e, w, c)
		if err != nil {
			return 0, err
		}
		u = f.utilityOf(ctx, e, w, cfgW, f.baselineFor(e, baseAdv, c, w))
		f.uCache[key] = u
	}
	if u <= f.Theta {
		return 0, fmt.Errorf("core: advisor utility %.3f below theta", u)
	}
	return u, nil
}

// perturbedReward computes the clamped IUDR reward of one perturbed
// workload given the original's utility u. It touches no mutable
// framework state — only the engine, advisors and utility model, which
// are safe for concurrent use once training has begun — so rollout
// workers call it concurrently without holding f.mu.
func (f *Framework) perturbedReward(ctx context.Context, e *engine.Engine, adv advisor.Advisor, baseAdv advisor.Advisor, c advisor.Constraint, u float64, pert *workload.Workload) (float64, error) {
	cfgP, err := adv.Recommend(e, pert, c)
	if err != nil {
		return 0, err
	}
	uPert := f.utilityOf(ctx, e, pert, cfgP, f.baselineFor(e, baseAdv, c, pert))
	r := workload.IUDR(u, uPert)
	if r > 2 {
		r = 2
	}
	if r < -2 {
		r = -2
	}
	return r, nil
}

// RLTrain runs reinforced perturbation policy learning against an advisor
// (Equation 6): sampled perturbations are rewarded by the IUDR they
// inflict, with the greedy decode as the self-critic baseline. Returns
// the per-epoch mean sampled reward trace (for the epochs it ran).
//
// Training starts at StartEpoch (0 unless restored by LoadCheckpoint)
// and re-seeds the RNG at every epoch boundary, so a resumed run is
// bit-identical to an uninterrupted one. Cancellation is honored between
// epochs and between workloads; EpochHook runs after each epoch.
func (f *Framework) RLTrain(ctx context.Context, e *engine.Engine, adv advisor.Advisor, baseAdv advisor.Advisor, c advisor.Constraint, train []*workload.Workload, epochs int) (rewards []float64, err error) {
	ctx, tsp := trace.Start(ctx, "core.rl_train")
	tsp.Str("advisor", adv.Name())
	tsp.Int("workloads", int64(len(train)))
	tsp.Int("epochs", int64(epochs))
	defer func() { tsp.Fail(err); tsp.End() }()
	params := f.Model.Params()
	if params == nil {
		return nil, fmt.Errorf("core: model %s is not trainable", f.Model.Name())
	}
	f.mu.Lock()
	if f.opt == nil {
		f.opt = nn.NewAdam(f.LR)
	}
	opt := f.opt
	f.mu.Unlock()
	batch := f.Batch
	if batch < 1 {
		batch = 1
	}
	workers := f.rolloutWorkers()
	// Per-epoch training telemetry. tele is nil on an uninstrumented
	// context and every accumulation below is gated on that, so the
	// disabled path pays nothing — the rollout allocation budget and the
	// scaling gates run uninstrumented. The reduce below is sequential,
	// so the accumulators need no locking.
	tele := telemetry.FromContext(ctx)
	type epStats struct {
		loss     float64 // advantage-weighted cross-entropy, summed
		steps    int     // decode steps the loss covered
		rsumsq   float64 // sum of squared rollout rewards
		gradNorm float64 // pre-clip global gradient norms, summed
		updates  int     // optimizer steps taken
		entropy  float64 // policy entropy, summed over decode steps
		entSteps int
		ok       int // rollouts that produced a reward
		rolls    int // rollouts attempted
	}
	var tstats epStats
	var entScratch []float64
	// step trains on one workload under the framework lock and returns
	// its contribution to the epoch's sampled-reward mean. A non-nil
	// error means training was canceled mid-rollout; no partial gradient
	// is ever applied in that case.
	step := func(ctx context.Context, epoch, wi int, w *workload.Workload) (float64, int, error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		// Sequential prologue: the greedy self-critic baseline (no
		// gradients, consumes no randomness). Decoding it first also
		// registers any unseen vocabulary tokens, triggers lazy advisor
		// initialization and fills the utility cache deterministically,
		// so the fanned-out rollouts below only read that shared state.
		if f.greedyG == nil {
			f.greedyG = nn.NewGraph(false)
		}
		gb := f.greedyG
		greedy := &workload.Workload{}
		for _, it := range w.Items {
			r, err := Decode(gb, f.Model, f.Vocab, it.Query, f.Constraint, f.Eps, false, f.rng)
			if err != nil {
				gb.Reset()
				return 0, 0, nil
			}
			greedy.Items = append(greedy.Items, workload.Item{Query: r.Query, Weight: it.Weight})
		}
		gb.Reset()
		u, uErr := f.originalUtility(ctx, e, adv, baseAdv, c, w)
		if uErr != nil {
			// Below-θ workloads are skipped entirely (Definition 3.3).
			return 0, 0, nil
		}
		rb, rbErr := f.perturbedReward(ctx, e, adv, baseAdv, c, u, greedy)
		if rbErr != nil {
			return 0, 0, nil
		}
		// Fan the B sampled trajectories of Equation 6 across the
		// rollout pool. Each trajectory decodes forward on its own graph
		// with its own deterministic RNG stream and scores its reward;
		// a failed decode or reward skips that trajectory (ok stays
		// false), mirroring the sequential behavior.
		rolls := make([]rollout, batch)
		graphs := f.rollGraphs(batch)
		es := f.epochSeed(epoch)
		ctx, bsp := trace.Start(ctx, "rl.rollout_batch")
		bsp.Int("workload", int64(wi))
		bsp.Int("batch", int64(batch))
		rerr := par.ForEach(ctx, workers, batch, func(b int) error {
			sp := obs.StartSpan(mRolloutSecs)
			defer sp.End()
			if err := faultinject.Fire(f.Inject, faultinject.PointRollout); err != nil {
				return err
			}
			g := graphs[b]
			rolls[b].g = g
			rng := rand.New(rand.NewSource(trajSeed(es, int64(wi), int64(b))))
			pert := &workload.Workload{}
			var steps []DecStep
			for _, it := range w.Items {
				if err := ctx.Err(); err != nil {
					return err
				}
				r, err := Decode(g, f.Model, f.Vocab, it.Query, f.Constraint, f.Eps, true, rng)
				if err != nil {
					return nil
				}
				pert.Items = append(pert.Items, workload.Item{Query: r.Query, Weight: it.Weight})
				steps = append(steps, r.Steps...)
			}
			r, err := f.perturbedReward(ctx, e, adv, baseAdv, c, u, pert)
			if err != nil {
				return nil
			}
			mRollouts.Inc()
			rolls[b].steps, rolls[b].r, rolls[b].ok = steps, r, true
			return nil
		})
		// In-order reduce: losses are seeded and backpropagated strictly
		// in trajectory order b = 0..B-1, so the floating-point
		// accumulation into the shared gradients — and therefore the
		// trained parameters — is bit-identical for every worker count.
		updated := false
		var sum float64
		var n int
		for b := range rolls {
			ro := &rolls[b]
			if rerr == nil && ro.ok {
				if tele != nil {
					// Policy entropy, no-grad: Softmax into a reused
					// scratch slice so instrumentation adds no steady-state
					// allocation to the reduce.
					for _, st := range ro.steps {
						entScratch = nn.SoftmaxInto(entScratch, st.Logits)
						var h float64
						for _, p := range entScratch {
							if p > 0 {
								h -= p * math.Log(p)
							}
						}
						tstats.entropy += h
						tstats.entSteps++
					}
					tstats.rsumsq += ro.r * ro.r
				}
				advantage := (ro.r - rb) / float64(batch)
				if advantage != 0 {
					for _, st := range ro.steps {
						l := nn.CrossEntropy(st.Logits, st.Chosen, advantage)
						if tele != nil {
							tstats.loss += l
							tstats.steps++
						}
					}
					ro.g.Backward()
					updated = true
				}
				sum += ro.r
				n++
			}
			if ro.g != nil {
				ro.g.Reset() // drops any half-built tape, recycles the arena
			}
		}
		bsp.Int("ok", int64(n))
		bsp.Fail(rerr)
		bsp.End()
		if rerr != nil {
			// Canceled mid-rollout: the graphs above were reset without
			// Backward, so parameters and gradients are untouched and
			// the framework stays fully usable.
			return 0, 0, rerr
		}
		if updated {
			norm := params.ClipGrads(5)
			if tele != nil {
				tstats.gradNorm += norm
				tstats.updates++
			}
			opt.Step(params)
		}
		if tele != nil {
			tstats.ok += n
			tstats.rolls += batch
		}
		return sum, n, nil
	}
	for ep := f.StartEpoch; ep < epochs; ep++ {
		if err := ctx.Err(); err != nil {
			return rewards, err
		}
		if err := faultinject.Fire(f.Inject, faultinject.PointRLEpoch); err != nil {
			return rewards, err
		}
		ectx, esp := trace.Start(ctx, "rl.epoch")
		esp.Int("epoch", int64(ep))
		sp := obs.StartSpan(mRLEpochSecs)
		f.mu.Lock()
		f.rng = rand.New(rand.NewSource(f.epochSeed(ep)))
		f.mu.Unlock()
		var sum float64
		var n int
		for wi, w := range train {
			if err := ectx.Err(); err != nil {
				esp.Fail(err)
				esp.End()
				return rewards, err
			}
			if err := faultinject.Fire(f.Inject, faultinject.PointRLWorkload); err != nil {
				esp.Fail(err)
				esp.End()
				return rewards, err
			}
			ws, wn, err := step(ectx, ep, wi, w)
			if err != nil {
				esp.Fail(err)
				esp.End()
				return rewards, err
			}
			sum += ws
			n += wn
		}
		if n > 0 {
			rewards = append(rewards, sum/float64(n))
		} else {
			rewards = append(rewards, 0)
		}
		mRLLastReward.Set(rewards[len(rewards)-1])
		esp.Float("mean_reward", rewards[len(rewards)-1])
		if tele != nil {
			// Steps are 1-based epoch numbers, so a checkpoint-resumed run
			// (StartEpoch > 0) continues every series monotonically.
			es := int64(ep + 1)
			mean := rewards[len(rewards)-1]
			tele.Series("rl_mean_reward").Append(es, mean)
			if n > 0 {
				v := tstats.rsumsq/float64(n) - mean*mean
				if v < 0 {
					v = 0
				}
				tele.Series("rl_reward_var").Append(es, v)
			}
			if tstats.steps > 0 {
				tele.Series("rl_loss").Append(es, tstats.loss/float64(tstats.steps))
			}
			if tstats.updates > 0 {
				tele.Series("rl_grad_norm").Append(es, tstats.gradNorm/float64(tstats.updates))
			}
			if tstats.entSteps > 0 {
				tele.Series("rl_entropy").Append(es, tstats.entropy/float64(tstats.entSteps))
			}
			if tstats.rolls > 0 {
				tele.Series("rl_rollout_ok_ratio").Append(es, float64(tstats.ok)/float64(tstats.rolls))
			}
			tstats = epStats{}
		}
		sp.End()
		esp.End()
		mRLEpochs.Inc()
		if f.EpochHook != nil {
			if err := f.EpochHook(ep); err != nil {
				return rewards, err
			}
		}
	}
	return rewards, nil
}

// SaveModel persists the trained generation model's parameters to w; a
// framework rebuilt with the same vocabulary, sizes and model kind can
// LoadModel them back.
func (f *Framework) SaveModel(w io.Writer) error {
	p := f.Model.Params()
	if p == nil {
		return fmt.Errorf("core: model %s has no parameters to save", f.Model.Name())
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return p.Save(w)
}

// LoadModel restores parameters persisted by SaveModel.
func (f *Framework) LoadModel(r io.Reader) error {
	p := f.Model.Params()
	if p == nil {
		return fmt.Errorf("core: model %s has no parameters to load", f.Model.Name())
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return p.Load(r)
}

// Generate produces the adversarial workload W' for w by greedy decoding
// with the trained policy. Greedy decoding is deterministic and does not
// consume the shared RNG, so Generate may run concurrently with training
// without perturbing it.
func (f *Framework) Generate(ctx context.Context, w *workload.Workload) (*workload.Workload, error) {
	mGeneratedWorkloads.Inc()
	if err := faultinject.Fire(f.Inject, faultinject.PointGenerate); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return perturbWorkloadOn(ctx, f.generateGraph(), f.Model, f.Vocab, w, f.Constraint, f.Eps, false, f.rng)
}

// generateGraph lazily builds the persistent inference graph shared by
// the Generate paths. Callers must hold f.mu.
func (f *Framework) generateGraph() *nn.Graph {
	if f.genG == nil {
		f.genG = nn.NewGraph(false)
	}
	return f.genG
}

// GenerateSampled produces a randomized perturbation (used by the Random
// baseline's repeated attempts).
func (f *Framework) GenerateSampled(ctx context.Context, w *workload.Workload) (*workload.Workload, error) {
	mGeneratedWorkloads.Inc()
	if err := faultinject.Fire(f.Inject, faultinject.PointGenerate); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return perturbWorkloadOn(ctx, f.generateGraph(), f.Model, f.Vocab, w, f.Constraint, f.Eps, true, f.rng)
}

// GenerateSeeded is GenerateSampled with a private RNG stream derived
// from the framework seed and the caller's salt, so repeated attempts
// are reproducible and independent of the shared training RNG —
// parallel assessment cells use it so measurement stays deterministic
// regardless of cell execution order.
func (f *Framework) GenerateSeeded(ctx context.Context, w *workload.Workload, salt int64) (*workload.Workload, error) {
	mGeneratedWorkloads.Inc()
	if err := faultinject.Fire(f.Inject, faultinject.PointGenerate); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(trajSeed(f.seed, salt, 0)))
	f.mu.Lock()
	defer f.mu.Unlock()
	return perturbWorkloadOn(ctx, f.generateGraph(), f.Model, f.Vocab, w, f.Constraint, f.Eps, true, rng)
}
