package core

import (
	"runtime"

	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/obs"
)

// Rollout-phase metrics: one histogram observation per trajectory
// (decode + reward), a completed-rollout counter, and the nn arena's
// reuse counters surfaced as gauges.
var (
	mRolloutSecs = obs.Default().Histogram("trap_rl_rollout_seconds")
	mRollouts    = obs.Default().Counter("trap_rl_rollouts_total")
)

func init() {
	obs.Default().GaugeFunc("trap_nn_arena_hits_total", func() float64 {
		h, _ := nn.ArenaStats()
		return float64(h)
	})
	obs.Default().GaugeFunc("trap_nn_arena_misses_total", func() float64 {
		_, m := nn.ArenaStats()
		return float64(m)
	})
}

// rollout is one sampled trajectory's contribution, produced by a worker
// and consumed by the in-order reduce.
type rollout struct {
	g     *nn.Graph // the trajectory's private tape (nil: worker never ran)
	steps []DecStep
	r     float64
	ok    bool // decode and reward both succeeded
}

// trajSeed derives the deterministic RNG seed of one sampled trajectory
// from (epoch seed, workload index, trajectory index) with a
// splitmix64-style mix, so every trajectory owns an independent random
// stream regardless of which worker runs it or in what order.
func trajSeed(epochSeed, workload, b int64) int64 {
	z := uint64(epochSeed) ^ uint64(workload)*0x9E3779B97F4A7C15 ^ uint64(b)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// rolloutWorkers resolves the rollout pool size: RolloutWorkers when
// positive, GOMAXPROCS otherwise.
func (f *Framework) rolloutWorkers() int {
	if f.RolloutWorkers > 0 {
		return f.RolloutWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// getGraph takes a graph from the framework's pool (or builds one), so
// tensor arenas stay warm across workloads and epochs.
func (f *Framework) getGraph(needsGrad bool) *nn.Graph {
	g, _ := f.graphs.Get().(*nn.Graph)
	if g == nil {
		return nn.NewGraph(needsGrad)
	}
	g.NeedsGrad = needsGrad
	return g
}

// putGraph resets a graph (recycling its arena tensors and dropping any
// un-run tape) and returns it to the pool. nil is ignored.
func (f *Framework) putGraph(g *nn.Graph) {
	if g == nil {
		return
	}
	g.Reset()
	f.graphs.Put(g)
}
