package core

import (
	"runtime"

	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/obs"
)

// Rollout-phase metrics: one histogram observation per trajectory
// (decode + reward), a completed-rollout counter, and the nn arena's
// reuse counters surfaced as gauges.
var (
	mRolloutSecs = obs.Default().Histogram("trap_rl_rollout_seconds")
	mRollouts    = obs.Default().Counter("trap_rl_rollouts_total")
)

func init() {
	obs.Default().GaugeFunc("trap_nn_arena_hits_total", func() float64 {
		h, _ := nn.ArenaStats()
		return float64(h)
	})
	obs.Default().GaugeFunc("trap_nn_arena_misses_total", func() float64 {
		_, m := nn.ArenaStats()
		return float64(m)
	})
	obs.Default().GaugeFunc("trap_nn_arena_retained_bytes", func() float64 {
		return float64(nn.ArenaRetainedBytes())
	})
	obs.Default().GaugeFunc("trap_nn_gemm_calls_total", func() float64 {
		c, _ := nn.GEMMStats()
		return float64(c)
	})
	obs.Default().GaugeFunc("trap_nn_gemm_flops_total", func() float64 {
		_, f := nn.GEMMStats()
		return float64(f)
	})
}

// rollout is one sampled trajectory's contribution, produced by a worker
// and consumed by the in-order reduce.
type rollout struct {
	g     *nn.Graph // the trajectory's private tape (nil: worker never ran)
	steps []DecStep
	r     float64
	ok    bool // decode and reward both succeeded
}

// trajSeed derives the deterministic RNG seed of one sampled trajectory
// from (epoch seed, workload index, trajectory index) with a
// splitmix64-style mix, so every trajectory owns an independent random
// stream regardless of which worker runs it or in what order.
func trajSeed(epochSeed, workload, b int64) int64 {
	z := uint64(epochSeed) ^ uint64(workload)*0x9E3779B97F4A7C15 ^ uint64(b)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// rolloutWorkers resolves the rollout pool size: RolloutWorkers when
// positive, GOMAXPROCS otherwise.
func (f *Framework) rolloutWorkers() int {
	if f.RolloutWorkers > 0 {
		return f.RolloutWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// rollGraphs returns the framework's persistent trajectory graphs,
// grown to n entries. Unlike a sync.Pool — whose contents every GC
// cycle discards, re-triggering arena warm-up allocations mid-training
// — these graphs live as long as the framework, so steady-state
// training reuses the same arena memory for every epoch and the
// per-step allocation count is flat in the worker count. Callers must
// hold f.mu; during a rollout fan-out, worker b exclusively owns
// rollGraphs(batch)[b].
func (f *Framework) rollGraphs(n int) []*nn.Graph {
	for len(f.rollG) < n {
		f.rollG = append(f.rollG, nn.NewGraph(true))
	}
	return f.rollG[:n]
}
