package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/trap-repro/trap/internal/nn"
)

// checkpointBlob is the on-disk form of a training checkpoint: the model
// parameters (the SaveModel wire format, so checkpoints stay compatible
// with plain model snapshots), the Adam moment estimates, and the number
// of completed RL epochs.
type checkpointBlob struct {
	Version int
	Epoch   int // RL epochs completed; resume starts here
	Params  []byte
	AdamT   int
	AdamM   [][]float64
	AdamV   [][]float64
}

const checkpointVersion = 1

// SaveCheckpoint writes a resumable training checkpoint after doneEpochs
// completed RL epochs: model parameters plus optimizer state. A
// framework restored with LoadCheckpoint and trained to the original
// epoch target produces bit-identical parameters to an uninterrupted run
// with the same seed (RLTrain re-seeds its RNG per epoch, so later
// epochs do not depend on the RNG position the interrupted run left
// behind).
func (f *Framework) SaveCheckpoint(w io.Writer, doneEpochs int) error {
	p := f.Model.Params()
	if p == nil {
		return fmt.Errorf("core: model %s has no parameters to checkpoint", f.Model.Name())
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return err
	}
	blob := checkpointBlob{Version: checkpointVersion, Epoch: doneEpochs, Params: buf.Bytes()}
	if f.opt != nil {
		blob.AdamT, blob.AdamM, blob.AdamV = f.opt.State(p)
	}
	return gob.NewEncoder(w).Encode(&blob)
}

// LoadCheckpoint restores a SaveCheckpoint snapshot into an identically
// constructed framework (same model kind, sizes and vocabulary) and
// returns the number of completed epochs. It sets StartEpoch so the next
// RLTrain call continues from where the checkpointed run stopped.
func (f *Framework) LoadCheckpoint(r io.Reader) (int, error) {
	p := f.Model.Params()
	if p == nil {
		return 0, fmt.Errorf("core: model %s has no parameters to restore", f.Model.Name())
	}
	var blob checkpointBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return 0, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if blob.Version != checkpointVersion {
		return 0, fmt.Errorf("core: checkpoint version %d, want %d", blob.Version, checkpointVersion)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := p.Load(bytes.NewReader(blob.Params)); err != nil {
		return 0, err
	}
	if blob.AdamM != nil {
		opt := nn.NewAdam(f.LR)
		if err := opt.SetState(p, blob.AdamT, blob.AdamM, blob.AdamV); err != nil {
			return 0, err
		}
		f.opt = opt
	}
	f.StartEpoch = blob.Epoch
	return blob.Epoch, nil
}
