package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/trap-repro/trap/internal/faultinject"
)

// TestRLTrainBitIdenticalAcrossWorkers is the tentpole guarantee of the
// parallel rollout pool: the trained parameters and reward traces are
// bit-identical whether the B trajectories of a step run sequentially or
// across 2 or 4 workers, because every trajectory owns a seed-derived
// RNG stream and the gradient reduce is strictly in trajectory order.
// Run under -race this also exercises the pool for data races.
func TestRLTrainBitIdenticalAcrossWorkers(t *testing.T) {
	tf := newTrainFixture(t)
	ctx := context.Background()
	counts := []int{1, 2, 4}
	// Build every framework before any training (training registers
	// unseen tokens in the shared vocabulary; see
	// TestCheckpointResumeEquivalence).
	fws := make([]*Framework, len(counts))
	for i := range counts {
		fws[i] = tf.buildFW("GRU", 90)
		fws[i].Batch = 5 // more trajectories than some worker counts
		fws[i].RolloutWorkers = counts[i]
	}
	var wantTrace []float64
	var wantState any
	for i, fw := range fws {
		trace, err := fw.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", counts[i], err)
		}
		state := fw.Model.Params().State()
		if i == 0 {
			wantTrace, wantState = trace, state
			continue
		}
		if !reflect.DeepEqual(trace, wantTrace) {
			t.Errorf("workers=%d reward trace diverged from workers=1:\n  %v\n  %v",
				counts[i], trace, wantTrace)
		}
		if !reflect.DeepEqual(state, wantState) {
			t.Errorf("workers=%d trained parameters diverged from workers=1", counts[i])
		}
	}
}

// TestCheckpointResumeEquivalenceParallelWorkers re-runs the resume
// guarantee with a different rollout worker count in every leg: the
// reference sequential, the interrupted run on 3 workers and the resumed
// run on 2. Worker count must be invisible to the checkpoint contract.
func TestCheckpointResumeEquivalenceParallelWorkers(t *testing.T) {
	tf := newTrainFixture(t)
	const totalEpochs, stopAfter = 4, 2
	ctx := context.Background()
	ref := tf.buildFW("GRU", 60)
	half := tf.buildFW("GRU", 60)
	res := tf.buildFW("GRU", 60)
	ref.RolloutWorkers, half.RolloutWorkers, res.RolloutWorkers = 1, 3, 2

	refTrace, err := ref.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, totalEpochs)
	if err != nil {
		t.Fatal(err)
	}
	halfTrace, err := half.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, stopAfter)
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := half.SaveCheckpoint(&ckpt, stopAfter); err != nil {
		t.Fatal(err)
	}
	ep, err := res.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ep != stopAfter {
		t.Fatalf("restored epoch %d, want %d", ep, stopAfter)
	}
	resTrace, err := res.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, totalEpochs)
	if err != nil {
		t.Fatal(err)
	}
	combined := append(append([]float64{}, halfTrace...), resTrace...)
	if !reflect.DeepEqual(refTrace, combined) {
		t.Errorf("reward traces diverged:\n  uninterrupted: %v\n  resumed:       %v", refTrace, combined)
	}
	if !reflect.DeepEqual(ref.Model.Params().State(), res.Model.Params().State()) {
		t.Error("resumed parameters differ from uninterrupted run")
	}
}

// TestRolloutFaultLeavesParametersUntouched injects a transient error
// into the very first trajectory rollout and verifies the no-partial-
// gradient contract: the failed step applies nothing, so a retry of the
// same framework is bit-identical to a framework that never faulted.
func TestRolloutFaultLeavesParametersUntouched(t *testing.T) {
	tf := newTrainFixture(t)
	ctx := context.Background()
	ref := tf.buildFW("GRU", 91)
	fw := tf.buildFW("GRU", 91)
	ref.Batch, fw.Batch = 4, 4
	fw.RolloutWorkers = 3
	fw.Inject = faultinject.NewSeeded(1, faultinject.Rule{
		Point: faultinject.PointRollout, Action: faultinject.ActError, Every: 1, Count: 1,
	})
	trace, err := fw.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, 2)
	if err == nil || !faultinject.IsTransient(err) {
		t.Fatalf("err = %v, want injected transient error", err)
	}
	if len(trace) != 0 {
		t.Fatalf("completed %d epochs through a first-rollout fault, want 0", len(trace))
	}
	refTrace, err := ref.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotTrace, err := fw.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, 2)
	if err != nil {
		t.Fatalf("retry after exhausted rule: %v", err)
	}
	if !reflect.DeepEqual(gotTrace, refTrace) {
		t.Errorf("retry trace diverged from unfaulted run:\n  %v\n  %v", gotTrace, refTrace)
	}
	if !reflect.DeepEqual(fw.Model.Params().State(), ref.Model.Params().State()) {
		t.Error("mid-rollout fault left partial state: retry parameters diverged")
	}
}

// countdownCtx reports context.Canceled from the n+1-th Err call onward,
// so cancellation lands at whatever cooperative check the countdown
// reaches — including the per-item checks inside rollout workers.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestRLTrainCancelMidTrainingKeepsFrameworkUsable cancels at several
// depths into training (some land inside the rollout fan-out) and
// verifies the framework stays fully usable afterwards.
func TestRLTrainCancelMidTrainingKeepsFrameworkUsable(t *testing.T) {
	tf := newTrainFixture(t)
	for _, n := range []int64{3, 10, 40} {
		fw := tf.buildFW("GRU", 92)
		fw.Batch = 4
		fw.RolloutWorkers = 2
		ctx := &countdownCtx{Context: context.Background()}
		ctx.remaining.Store(n)
		if _, err := fw.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, 5); !errors.Is(err, context.Canceled) {
			t.Fatalf("countdown %d: err = %v, want context.Canceled", n, err)
		}
		if _, err := fw.Generate(context.Background(), tf.train[0]); err != nil {
			t.Fatalf("countdown %d: Generate after cancel: %v", n, err)
		}
		if _, err := fw.RLTrain(context.Background(), tf.f.e, tf.adv, nil, tf.c, tf.train, 1); err != nil {
			t.Fatalf("countdown %d: RLTrain after cancel: %v", n, err)
		}
	}
}

// TestGenerateSeededDeterministic: the same salt reproduces the same
// perturbation; the shared training RNG is not consumed.
func TestGenerateSeededDeterministic(t *testing.T) {
	tf := newTrainFixture(t)
	fw := tf.buildFW("GRU", 93)
	ctx := context.Background()
	w := tf.train[0]
	a, err := fw.GenerateSeeded(ctx, w, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fw.GenerateSeeded(ctx, w, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("same salt produced different workloads:\n  %s\n  %s", a.Key(), b.Key())
	}
	c, err := fw.GenerateSeeded(ctx, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Key() == a.Key() {
		t.Log("salt 8 matched salt 7 (possible but unexpected for a sampled decode)")
	}
}
