package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/workload"
)

type coreFixture struct {
	e   *engine.Engine
	gen *workload.Generator
	v   *Vocab
}

func newCoreFixture(t testing.TB) *coreFixture {
	t.Helper()
	s := bench.TPCH(100)
	gen := workload.NewGenerator(s, 21, 10)
	var ws []*workload.Workload
	for i := 0; i < 4; i++ {
		ws = append(ws, gen.Workload(5))
	}
	return &coreFixture{e: engine.New(s), gen: gen, v: BuildVocab(s, ws)}
}

func TestVocabRegions(t *testing.T) {
	f := newCoreFixture(t)
	if f.v.Size() == 0 {
		t.Fatal("empty vocab")
	}
	if len(f.v.Region("operator")) != len(sqlx.Operators) {
		t.Error("operator region wrong")
	}
	if len(f.v.Region("aggregator")) != len(sqlx.Aggregators) {
		t.Error("aggregator region wrong")
	}
	if len(f.v.Region("conjunction")) != 2 {
		t.Error("conjunction region wrong")
	}
	cols := f.v.ColumnsRegion("lineitem")
	if len(cols) != 16 {
		t.Errorf("lineitem columns region = %d, want 16", len(cols))
	}
	vals := f.v.ValuesRegion(sqlx.ColumnRef{Table: "lineitem", Column: "l_quantity"})
	if len(vals) < valuesPerColumn/2 {
		t.Errorf("values region too small: %d", len(vals))
	}
	// ID round trip and stability.
	tok := f.v.Token(cols[0])
	if f.v.ID(tok) != cols[0] {
		t.Error("ID not stable")
	}
	if f.v.EmbeddingRows() <= f.v.Size() {
		t.Error("no embedding headroom")
	}
}

func TestVocabEncodesGeneratedQueries(t *testing.T) {
	f := newCoreFixture(t)
	for i := 0; i < 20; i++ {
		q := f.gen.Query()
		ids := f.v.Encode(q)
		if len(ids) != len(q.Tokens()) {
			t.Fatal("encode length mismatch")
		}
	}
}

// decodeOne perturbs one query with the given model and constraint.
func decodeOne(t *testing.T, f *coreFixture, m Scorer, q *sqlx.Query, c PerturbConstraint, eps int, seed int64) *DecodeResult {
	t.Helper()
	g := nn.NewGraph(false)
	r, err := Decode(g, m, f.v, q, c, eps, true, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Decode(%s, %s): %v\n%s", m.Name(), c, err, q)
	}
	return r
}

func TestRandomDecodeRespectsEditBudget(t *testing.T) {
	f := newCoreFixture(t)
	for _, c := range AllConstraints {
		for seed := int64(0); seed < 30; seed++ {
			q := f.gen.Query()
			r := decodeOne(t, f, RandomModel{}, q, c, 5, seed)
			d := sqlx.EditDistance(q, r.Query)
			if d > 5 {
				t.Errorf("%s: edit distance %d > 5:\n  %s\n  %s", c, d, q, r.Query)
			}
			if r.Edits > 5 {
				t.Errorf("%s: session counted %d edits > 5", c, r.Edits)
			}
			if d > r.Edits {
				t.Errorf("%s: true distance %d exceeds counted %d", c, d, r.Edits)
			}
			if err := r.Query.Validate(); err != nil {
				t.Errorf("%s: invalid output: %v", c, err)
			}
		}
	}
}

func TestValueOnlyChangesOnlyValues(t *testing.T) {
	f := newCoreFixture(t)
	for seed := int64(0); seed < 30; seed++ {
		q := f.gen.Query()
		r := decodeOne(t, f, RandomModel{}, q, ValueOnly, 5, seed)
		p := r.Query
		if len(p.Filters) != len(q.Filters) {
			t.Fatal("ValueOnly changed filter count")
		}
		for i := range q.Filters {
			if p.Filters[i].Col != q.Filters[i].Col || p.Filters[i].Op != q.Filters[i].Op {
				t.Errorf("ValueOnly changed column/op: %s -> %s", q.Filters[i], p.Filters[i])
			}
		}
		if len(p.Select) != len(q.Select) {
			t.Error("ValueOnly changed payload")
		}
		for i := range q.OrderBy {
			if p.OrderBy[i] != q.OrderBy[i] {
				t.Error("ValueOnly changed ORDER BY")
			}
		}
	}
}

func TestColumnConsistentStaysInColumnSet(t *testing.T) {
	f := newCoreFixture(t)
	for seed := int64(0); seed < 30; seed++ {
		q := f.gen.Query()
		orig := map[string]bool{}
		for _, c := range q.Columns() {
			orig[c.String()] = true
		}
		r := decodeOne(t, f, RandomModel{}, q, ColumnConsistent, 5, seed)
		for _, c := range r.Query.Columns() {
			if !orig[c.String()] {
				t.Errorf("ColumnConsistent introduced new column %s:\n  %s\n  %s", c, q, r.Query)
			}
		}
		if len(r.Query.Select) != len(q.Select) || len(r.Query.Filters) != len(q.Filters) {
			t.Error("ColumnConsistent changed query shape")
		}
	}
}

func TestSharedTableKeepsTablesAndJoins(t *testing.T) {
	f := newCoreFixture(t)
	sawExtension := false
	for seed := int64(0); seed < 60; seed++ {
		q := f.gen.Query()
		r := decodeOne(t, f, RandomModel{}, q, SharedTable, 7, seed)
		p := r.Query
		if len(p.From) != len(q.From) {
			t.Fatal("SharedTable changed table set")
		}
		for i := range q.From {
			if p.From[i] != q.From[i] {
				t.Error("SharedTable reordered/changed tables")
			}
		}
		if len(p.Joins) != len(q.Joins) {
			t.Fatal("SharedTable changed join graph")
		}
		for i := range q.Joins {
			if p.Joins[i] != q.Joins[i] {
				t.Error("SharedTable modified a join predicate")
			}
		}
		if len(p.Select) > len(q.Select) || len(p.Filters) > len(q.Filters) {
			sawExtension = true
		}
		for _, c := range p.Columns() {
			if !p.HasTable(c.Table) {
				t.Errorf("column %s references foreign table", c)
			}
		}
	}
	if !sawExtension {
		t.Error("SharedTable never exercised an extension slot")
	}
}

func TestGroupedQueriesStayStrict(t *testing.T) {
	f := newCoreFixture(t)
	grouped := sqlx.MustParse("SELECT lineitem.l_linestatus, SUM(lineitem.l_tax) FROM lineitem " +
		"WHERE lineitem.l_quantity = 10 GROUP BY lineitem.l_linestatus")
	for seed := int64(0); seed < 40; seed++ {
		r := decodeOne(t, f, RandomModel{}, grouped, SharedTable, 7, seed)
		p := r.Query
		gset := map[sqlx.ColumnRef]bool{}
		for _, c := range p.GroupBy {
			gset[c] = true
		}
		for _, s := range p.Select {
			if s.Agg == "" && !gset[s.Col] {
				t.Fatalf("plain select column %s not grouped:\n%s", s.Col, p)
			}
		}
	}
}

func TestGeneratedQueriesPlannable(t *testing.T) {
	f := newCoreFixture(t)
	for _, c := range AllConstraints {
		for seed := int64(0); seed < 20; seed++ {
			q := f.gen.Query()
			r := decodeOne(t, f, RandomModel{}, q, c, 5, seed)
			if _, err := f.e.QueryCost(r.Query, nil, engine.ModeEstimated); err != nil {
				t.Errorf("%s: unplannable perturbed query: %v\n%s", c, err, r.Query)
			}
		}
	}
}

func TestQuickSessionInvariants(t *testing.T) {
	f := newCoreFixture(t)
	check := func(seed int64, constraintPick uint8, epsPick uint8) bool {
		c := AllConstraints[int(constraintPick)%3]
		eps := 1 + int(epsPick)%9
		q := f.gen.Query()
		g := nn.NewGraph(false)
		r, err := Decode(g, RandomModel{}, f.v, q, c, eps, true, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if sqlx.EditDistance(q, r.Query) > eps {
			return false
		}
		return r.Query.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestModelsDecodeAndDiffer(t *testing.T) {
	f := newCoreFixture(t)
	rng := rand.New(rand.NewSource(3))
	sizes := Sizes{Embed: 16, Hidden: 16}
	models := []Scorer{
		NewTRAPModel(f.v, sizes, rng),
		NewSeq2Seq(f.v, sizes, rng),
		NewGRUModel(f.v, sizes, rng),
		RandomModel{},
	}
	q := f.gen.Query()
	for _, m := range models {
		r := decodeOne(t, f, m, q, SharedTable, 5, 1)
		if r.Query.Validate() != nil {
			t.Errorf("%s produced invalid query", m.Name())
		}
	}
	// Parameter counts: TRAP > GRU (encoder + attention), Random has none.
	trap := models[0].Params().Count()
	gru := models[2].Params().Count()
	if trap <= gru {
		t.Errorf("TRAP params %d should exceed GRU %d", trap, gru)
	}
	if models[3].Params() != nil {
		t.Error("Random should have no params")
	}
}

func TestPLMModelsLargerAndDecode(t *testing.T) {
	f := newCoreFixture(t)
	rng := rand.New(rand.NewSource(4))
	sizes := Sizes{Embed: 16, Hidden: 16}
	trap := NewTRAPModel(f.v, sizes, rng)
	q := f.gen.Query()
	for _, spec := range PLMSpecs() {
		plm := NewPLMModel(spec, f.v, sizes, rng)
		if plm.Params().Count() <= trap.Params().Count() {
			t.Errorf("%s params %d not larger than TRAP %d",
				spec.Name, plm.Params().Count(), trap.Params().Count())
		}
		r := decodeOne(t, f, plm, q, SharedTable, 5, 2)
		if r.Query.Validate() != nil {
			t.Errorf("%s produced invalid query", spec.Name)
		}
	}
}

func TestReplayMatchesDecode(t *testing.T) {
	f := newCoreFixture(t)
	m := RandomModel{}
	for seed := int64(0); seed < 10; seed++ {
		q := f.gen.Query()
		g := nn.NewGraph(false)
		r, err := Decode(g, m, f.v, q, SharedTable, 5, true, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Replay(nn.NewGraph(false), m, f.v, q, SharedTable, 5, r.Choices)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if r2.Query.String() != r.Query.String() {
			t.Errorf("replay diverged:\n  %s\n  %s", r.Query, r2.Query)
		}
	}
}

func TestPretrainReducesLoss(t *testing.T) {
	f := newCoreFixture(t)
	rng := rand.New(rand.NewSource(5))
	m := NewTRAPModel(f.v, Sizes{Embed: 16, Hidden: 16}, rng)
	fw := NewFramework(m, f.v, SharedTable, 6)
	trace, err := fw.Pretrain(context.Background(), f.gen, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 6 {
		t.Fatalf("trace length %d", len(trace))
	}
	if trace[len(trace)-1] >= trace[0] {
		t.Errorf("pretraining loss did not decrease: %v", trace)
	}
}

func TestUtilityModelAccuracy(t *testing.T) {
	f := newCoreFixture(t)
	um, err := TrainUtilityModel(f.e, f.gen, 600, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2 := um.R2(f.e, f.gen.Query, 200, 8)
	if r2 < 0.5 {
		t.Errorf("utility model R2 = %v, want >= 0.5", r2)
	}
	// The learned model must track runtime better than raw what-if
	// estimates on relative error (that is its whole purpose).
	q := f.gen.Query()
	if _, err := um.QueryCost(f.e, q, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRLTrainImprovesReward(t *testing.T) {
	f := newCoreFixture(t)
	rng := rand.New(rand.NewSource(9))
	m := NewTRAPModel(f.v, Sizes{Embed: 16, Hidden: 16}, rng)
	fw := NewFramework(m, f.v, SharedTable, 10)
	fw.Eps = 5
	fw.Theta = 0.02
	adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	c := advisor.Constraint{StorageBytes: f.e.Schema().TotalSizeBytes() / 2}
	var train []*workload.Workload
	for i := 0; i < 4; i++ {
		train = append(train, f.gen.Workload(3))
	}
	trace, err := fw.RLTrain(context.Background(), f.e, adv, nil, c, train, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 {
		t.Fatalf("trace length %d", len(trace))
	}
	// Generation must work after training.
	pert, err := fw.Generate(context.Background(), train[0])
	if err != nil {
		t.Fatal(err)
	}
	if pert.Size() != train[0].Size() {
		t.Error("perturbed workload size mismatch")
	}
	for i, it := range pert.Items {
		if d := sqlx.EditDistance(train[0].Items[i].Query, it.Query); d > fw.Eps {
			t.Errorf("perturbed query %d exceeds edit budget: %d", i, d)
		}
	}
}

func TestRewardOfSkipsLowUtility(t *testing.T) {
	f := newCoreFixture(t)
	rng := rand.New(rand.NewSource(10))
	m := NewTRAPModel(f.v, Sizes{Embed: 16, Hidden: 16}, rng)
	fw := NewFramework(m, f.v, ValueOnly, 11)
	fw.Theta = 0.99 // impossible threshold
	adv := &advisor.Drop{}
	w := f.gen.Workload(3)
	if _, err := fw.RewardOf(context.Background(), f.e, adv, nil, advisor.Constraint{MaxIndexes: 2}, w, w); err == nil {
		t.Error("expected below-theta error")
	}
}
