package core

import (
	"math/rand"

	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/sqlx"
)

// Scorer is a generation model: it reads the input query's token ids and
// scores candidate tokens step by step while the Session enforces the
// grammar and perturbation constraints. TRAP, the baselines of Section
// V-B (Random, GRU, Seq2Seq) and the PLM variants of Section V-C all
// implement it, so every generator shares the same tree masking.
type Scorer interface {
	// Name identifies the model.
	Name() string
	// Params returns the trainable parameters (nil for Random).
	Params() *nn.Params
	// Begin starts decoding an input token-id sequence.
	Begin(g *nn.Graph, input []int) DecState
	// Score returns logits (len(cands)×1) for the candidate ids.
	Score(g *nn.Graph, st DecState, cands []int) *nn.Tensor
	// Advance consumes the chosen token id and returns the next state.
	Advance(g *nn.Graph, st DecState, chosen int) DecState
	// ResetDecoder re-initializes the decoder parameters, keeping the
	// encoder — the paper's encoder-only transfer between pretraining and
	// RL (Section IV-C).
	ResetDecoder(rng *rand.Rand)
}

// DecState is a model-specific decoding state.
type DecState interface{}

// Sizes configures model dimensions.
type Sizes struct {
	Embed  int
	Hidden int
}

// DefaultSizes returns the experiment-scale dimensions (the paper uses
// embedding size 128; the reproduction defaults to 48 for laptop-scale
// training and all sizes are configurable).
func DefaultSizes() Sizes { return Sizes{Embed: 48, Hidden: 48} }

// trapState is the decoding state of the attention models: the packed
// encoder state matrix (inside the attention cache, whose Wh·H
// projection is computed once per sequence on the first Score) plus the
// decoder state.
type trapState struct {
	att  *nn.AttCache
	s    *nn.Tensor
	prev int
}

// TRAPModel is the paper's generator (Section IV-A): Bi-GRU encoder, GRU
// decoder, SQL context attention (Equation 3) and a masked output layer
// over [c_t; s_t; emb(q'_{t-1})] (Equation 4).
type TRAPModel struct {
	sizes Sizes

	encParams *nn.Params
	decParams *nn.Params
	all       *nn.Params

	emb     *nn.Embedding // shared input/output embedding (encoder side)
	enc     *nn.BiGRU
	bridge  *nn.Dense // encoder final state -> decoder initial state
	att     *nn.Attention
	dec     *nn.GRUCell
	decEmb  *nn.Embedding
	outW    *nn.Tensor
	outB    *nn.Tensor
	embRows int
}

// NewTRAPModel builds the model over a vocabulary.
func NewTRAPModel(v *Vocab, sizes Sizes, rng *rand.Rand) *TRAPModel {
	m := &TRAPModel{sizes: sizes, embRows: v.EmbeddingRows()}
	m.encParams = &nn.Params{}
	m.emb = nn.NewEmbedding(m.encParams, "emb", m.embRows, sizes.Embed, rng)
	m.enc = nn.NewBiGRU(m.encParams, "enc", sizes.Embed, sizes.Hidden, rng)
	m.initDecoder(rng)
	return m
}

func (m *TRAPModel) initDecoder(rng *rand.Rand) {
	s := m.sizes
	m.decParams = &nn.Params{}
	m.bridge = nn.NewDense(m.decParams, "bridge", 2*s.Hidden, s.Hidden, rng)
	m.att = nn.NewAttention(m.decParams, "att", 2*s.Hidden, s.Hidden, s.Hidden, rng)
	m.dec = nn.NewGRUCell(m.decParams, "dec", s.Embed, s.Hidden, rng)
	m.decEmb = nn.NewEmbedding(m.decParams, "decemb", m.embRows, s.Embed, rng)
	outIn := 2*s.Hidden + s.Hidden + s.Embed // [c_t; s_t; emb(prev)]
	m.outW = m.decParams.Add("out.W", nn.RandTensor(m.embRows, outIn, 0.05, rng))
	m.outB = m.decParams.Add("out.B", nn.NewTensor(m.embRows, 1))
	m.all = nil
}

// Name implements Scorer.
func (m *TRAPModel) Name() string { return "TRAP" }

// Params implements Scorer.
func (m *TRAPModel) Params() *nn.Params {
	if m.all == nil {
		m.all = &nn.Params{}
		m.all.Merge("enc", m.encParams)
		m.all.Merge("dec", m.decParams)
	}
	return m.all
}

// EncoderParams returns only the encoder parameters (for encoder-only
// transfer and pretraining-phase optimizers).
func (m *TRAPModel) EncoderParams() *nn.Params { return m.encParams }

// ResetDecoder implements Scorer.
func (m *TRAPModel) ResetDecoder(rng *rand.Rand) { m.initDecoder(rng) }

// Begin implements Scorer.
func (m *TRAPModel) Begin(g *nn.Graph, input []int) DecState {
	xs := make([]*nn.Tensor, len(input))
	for i, id := range input {
		xs[i] = m.emb.Lookup(g, clampID(id, m.embRows))
	}
	H := m.enc.EncodePacked(g, xs)
	s0 := g.Tanh(m.bridge.Apply(g, g.Col(H, H.C-1)))
	return &trapState{att: &nn.AttCache{H: H}, s: s0, prev: 0}
}

// Score implements Scorer: Equation 4 restricted to the candidate region.
func (m *TRAPModel) Score(g *nn.Graph, st DecState, cands []int) *nn.Tensor {
	t := st.(*trapState)
	ctx, _ := m.att.ContextPre(g, t.att, t.s)
	prevEmb := m.decEmb.Lookup(g, clampID(t.prev, m.embRows))
	x := g.Concat(ctx, t.s, prevEmb)
	rows := make([]int, len(cands))
	for i, c := range cands {
		rows[i] = clampID(c, m.embRows)
	}
	return g.SelectedAffine(m.outW, m.outB, x, rows)
}

// Advance implements Scorer. Decoding consumes states linearly (callers
// always replace the old state with the returned one), so the state is
// mutated in place instead of allocating one struct per step.
func (m *TRAPModel) Advance(g *nn.Graph, st DecState, chosen int) DecState {
	t := st.(*trapState)
	x := m.decEmb.Lookup(g, clampID(chosen, m.embRows))
	t.s = m.dec.Step(g, x, t.s)
	t.prev = chosen
	return t
}

func clampID(id, rows int) int {
	if id >= rows {
		return id % rows
	}
	return id
}

// EncodeVector returns the mean-pooled encoder representation of a query
// — the query vectors visualized in Figure 17's OOD analysis.
func (m *TRAPModel) EncodeVector(v *Vocab, q *sqlx.Query) []float64 {
	g := nn.NewGraph(false)
	st := m.Begin(g, v.Encode(q)).(*trapState)
	H := st.att.H
	out := make([]float64, H.R)
	for i := range out {
		var s float64
		for j := 0; j < H.C; j++ {
			s += H.W[i*H.C+j]
		}
		out[i] = s / float64(H.C)
	}
	return out
}

// Seq2SeqModel is the vanilla baseline: the same Bi-GRU encoder and GRU
// decoder without the SQL context attention (the decoder sees only the
// bridged final encoder state).
type Seq2SeqModel struct {
	*TRAPModel
}

// NewSeq2Seq builds the attention-free baseline.
func NewSeq2Seq(v *Vocab, sizes Sizes, rng *rand.Rand) *Seq2SeqModel {
	return &Seq2SeqModel{TRAPModel: NewTRAPModel(v, sizes, rng)}
}

// Name implements Scorer.
func (m *Seq2SeqModel) Name() string { return "Seq2Seq" }

// Score implements Scorer without attention: the "context" is the final
// encoder state for every step.
func (m *Seq2SeqModel) Score(g *nn.Graph, st DecState, cands []int) *nn.Tensor {
	t := st.(*trapState)
	ctx := g.Col(t.att.H, t.att.H.C-1)
	prevEmb := m.decEmb.Lookup(g, clampID(t.prev, m.embRows))
	x := g.Concat(ctx, t.s, prevEmb)
	rows := make([]int, len(cands))
	for i, c := range cands {
		rows[i] = clampID(c, m.embRows)
	}
	return g.SelectedAffine(m.outW, m.outB, x, rows)
}

// gruState is the decoder-only state.
type gruState struct {
	s    *nn.Tensor
	prev int
}

// GRUModel is the decoder-only baseline of Section V-B: a single GRU
// language model over the generated prefix, with no encoder at all.
type GRUModel struct {
	sizes   Sizes
	params  *nn.Params
	emb     *nn.Embedding
	cell    *nn.GRUCell
	outW    *nn.Tensor
	outB    *nn.Tensor
	embRows int
}

// NewGRUModel builds the decoder-only baseline.
func NewGRUModel(v *Vocab, sizes Sizes, rng *rand.Rand) *GRUModel {
	m := &GRUModel{sizes: sizes, params: &nn.Params{}, embRows: v.EmbeddingRows()}
	m.emb = nn.NewEmbedding(m.params, "emb", m.embRows, sizes.Embed, rng)
	m.cell = nn.NewGRUCell(m.params, "gru", sizes.Embed, sizes.Hidden, rng)
	outIn := sizes.Hidden + sizes.Embed
	m.outW = m.params.Add("out.W", nn.RandTensor(m.embRows, outIn, 0.05, rng))
	m.outB = m.params.Add("out.B", nn.NewTensor(m.embRows, 1))
	return m
}

// Name implements Scorer.
func (m *GRUModel) Name() string { return "GRU" }

// Params implements Scorer.
func (m *GRUModel) Params() *nn.Params { return m.params }

// ResetDecoder implements Scorer (the whole model is a decoder; the
// baseline has nothing to transfer, so this is a no-op).
func (m *GRUModel) ResetDecoder(*rand.Rand) {}

// Begin implements Scorer (the input is ignored: no encoder). The zero
// initial state lives in the graph's arena, not the heap.
func (m *GRUModel) Begin(g *nn.Graph, input []int) DecState {
	return &gruState{s: g.Alloc(m.cell.Hidden, 1), prev: 0}
}

// Score implements Scorer.
func (m *GRUModel) Score(g *nn.Graph, st DecState, cands []int) *nn.Tensor {
	t := st.(*gruState)
	prevEmb := m.emb.Lookup(g, clampID(t.prev, m.embRows))
	x := g.Concat(t.s, prevEmb)
	rows := make([]int, len(cands))
	for i, c := range cands {
		rows[i] = clampID(c, m.embRows)
	}
	return g.SelectedAffine(m.outW, m.outB, x, rows)
}

// Advance implements Scorer, mutating the state in place (decoding uses
// states linearly; see TRAPModel.Advance).
func (m *GRUModel) Advance(g *nn.Graph, st DecState, chosen int) DecState {
	t := st.(*gruState)
	x := m.emb.Lookup(g, clampID(chosen, m.embRows))
	t.s = m.cell.Step(g, x, t.s)
	t.prev = chosen
	return t
}

// RandomModel scores every candidate equally: uniform sampling through
// the same reference-tree masking (the Random baseline of Section V-B).
type RandomModel struct{}

// Name implements Scorer.
func (RandomModel) Name() string { return "Random" }

// Params implements Scorer.
func (RandomModel) Params() *nn.Params { return nil }

// ResetDecoder implements Scorer.
func (RandomModel) ResetDecoder(*rand.Rand) {}

// Begin implements Scorer.
func (RandomModel) Begin(*nn.Graph, []int) DecState { return nil }

// Score implements Scorer with all-zero logits (uniform).
func (RandomModel) Score(g *nn.Graph, _ DecState, cands []int) *nn.Tensor {
	return g.Alloc(len(cands), 1)
}

// Advance implements Scorer.
func (RandomModel) Advance(_ *nn.Graph, st DecState, _ int) DecState { return st }
