package trap

// One benchmark per table and figure of the paper's evaluation: each
// regenerates the corresponding result at a reduced scale (the cmd/
// experiments binary runs the same drivers at configurable scale).
// Run with: go test -bench=. -benchmem
//
// The shapes to expect (paper vs. this reproduction) are recorded in
// EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/workload"
)

// benchParams is the benchmark-scale configuration.
func benchParams() assess.Params {
	p := assess.QuickParams()
	p.Templates = 8
	p.TrainWorkloads = 4
	p.TestWorkloads = 4
	p.WorkloadSize = 5
	p.UtilitySamples = 250
	p.PretrainPairs = 4
	p.PretrainEpochs = 1
	p.RLEpochs = 2
	p.AdvisorEpisodes = 10
	return p
}

var (
	benchOnce  sync.Once
	benchSuite *assess.Suite
)

// suite lazily builds one shared TPC-H suite for all benchmarks.
func suite(b *testing.B) *assess.Suite {
	b.Helper()
	benchOnce.Do(func() {
		s, err := assess.NewSuite("tpch", bench.TPCH(benchParams().ScaleDown), benchParams(), 42)
		if err != nil {
			panic(err)
		}
		benchSuite = s
	})
	return benchSuite
}

// BenchmarkCostBatchWorkload times the hottest path in the repo — the
// what-if CostBatch every advisor and assessment bottoms out in — on a
// TPC-H-scale workload, sequential vs. fanned out. Cold-cache per
// iteration so the benchmark times planning, not map lookups.
func BenchmarkCostBatchWorkload(b *testing.B) {
	s := suite(b)
	var items []engine.CostItem
	for _, w := range append(append([]*workload.Workload(nil), s.Train...), s.Test...) {
		for _, it := range w.Items {
			items = append(items, engine.CostItem{Q: it.Query, Weight: it.Weight})
		}
	}
	var cfg schema.Config
	for i, col := range s.Test[0].Columns() {
		if i >= 4 {
			break
		}
		cfg = cfg.Add(schema.Index{Table: col.Table, Columns: []string{col.Column}})
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s.E.SetBatchWorkers(workers)
			defer s.E.SetBatchWorkers(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.E.ClearCache()
				if _, err := s.E.CostBatch(context.Background(), items, cfg, engine.ModeEstimated); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMeasureWorkload times a full Random-method assessment over
// the suite's test workloads at several measurement pool sizes. The
// result is bit-identical across worker counts (the per-workload cells
// draw from seeded RNG streams and reduce in order), so the subbenches
// differ only in wall-clock.
func BenchmarkMeasureWorkload(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	m, err := s.BuildMethod(ctx, "Random", core.ValueOnly, adv, nil, s.Storage, assess.MethodConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s.MeasureWorkers = workers
			defer func() { s.MeasureWorkers = 0 }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Measure(ctx, m, adv, nil, s.Storage); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1Templates(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := assess.Fig1([]*assess.Suite{s})
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTab1PerturbationExamples(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assess.Tab1(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6RobustnessGrid(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := assess.Fig6([]*assess.Suite{s},
			[]string{"Extend", "Drop"}, []string{"Random", "TRAP"},
			[]core.PerturbConstraint{core.SharedTable})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7GenerationModules(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, err := assess.Fig7Tab4(s, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTab4GenerationEfficiency(b *testing.B) {
	s := suite(b)
	results, _, _, err := assess.Fig7Tab4(s, 10)
	if err != nil {
		b.Fatal(err)
	}
	// The table's content is the #params/time ordering; the benchmark
	// itself times the decode loop of the largest and smallest module.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for range results {
		}
		adv, _ := s.BuildAdvisor(mustSpec(b, "Extend"))
		m, err := s.BuildMethod(context.Background(), "Random", core.SharedTable, adv, nil, s.Storage, assess.MethodConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.GenerationCost(m, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func mustSpec(b *testing.B, name string) assess.AdvisorSpec {
	b.Helper()
	sp, err := assess.SpecByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

func BenchmarkFig8TrainingParadigm(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := assess.Fig8(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Hyperparams(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assess.Fig9(s, []string{"Random", "TRAP"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Scalability(b *testing.B) {
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assess.Fig10(p, []int{809}, []string{"Random", "TRAP"}, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11StorageBudget(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assess.Fig11(s, []string{"Random", "TRAP"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12StateGranularity(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assess.Fig12(s, []core.PerturbConstraint{core.SharedTable}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13CandidatePruning(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assess.Fig13(s, core.SharedTable); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14IndexInteraction(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assess.Fig14(s, core.SharedTable); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15MultiColumn(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assess.Fig15(s, core.SharedTable); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16QueryChanges(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := assess.Fig16(s, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17OOD(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := assess.Fig17(s, 1); err != nil {
			b.Fatal(err)
		}
	}
}
