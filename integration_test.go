package trap

import (
	"testing"
)

// TestTPCDSEndToEnd exercises the whole pipeline on the widest dataset:
// suite construction over the 429-column TPC-DS schema, advisor training,
// TRAP training and assessment.
func TestTPCDSEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p := apiParams()
	a, err := NewAssessor("tpcds", TPCDS(400), p, 6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.AssessNamed("DTA", ColumnConsistent)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range rep.Pairs {
		for i := range pair.Orig.Items {
			if d := EditDistance(pair.Orig.Items[i].Query, pair.Pert.Items[i].Query); d > p.Eps {
				t.Errorf("edit distance %d over budget", d)
			}
		}
	}
}

// TestTransactionLearnedAdvisorEndToEnd covers a learned advisor on the
// banking dataset end to end.
func TestTransactionLearnedAdvisorEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	a, err := NewAssessor("transaction", Transaction(400), apiParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AssessNamed("DRLindex", ValueOnly); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicAssessments: the same seed must reproduce identical
// results end to end (the repository's reproducibility guarantee).
func TestDeterministicAssessments(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	run := func() (float64, int) {
		a, err := NewAssessor("tpch", TPCH(300), apiParams(), 12)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.AssessNamed("Extend", ValueOnly)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanIUDR, rep.N
	}
	i1, n1 := run()
	i2, n2 := run()
	if i1 != i2 || n1 != n2 {
		t.Errorf("non-deterministic: (%v, %d) vs (%v, %d)", i1, n1, i2, n2)
	}
}
