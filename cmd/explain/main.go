// Command explain parses a SPAJ SQL query, plans it with the simulated
// optimizer under an optional index configuration, and prints the
// EXPLAIN-style plan tree in both statistics modes — handy for exploring
// how the what-if estimates diverge from the runtime stand-in.
//
// Usage:
//
//	explain -dataset tpch -sql "SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_orderkey = 5"
//	explain -dataset tpch -sql "..." -indexes "lineitem(l_orderkey);orders(o_orderdate,o_totalprice)"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
)

func main() {
	dataset := flag.String("dataset", "tpch", "tpch, tpcds or transaction")
	sql := flag.String("sql", "", "SPAJ SQL query to plan")
	indexes := flag.String("indexes", "", `semicolon-separated hypothetical indexes, e.g. "lineitem(l_orderkey);orders(o_orderdate,o_totalprice)"`)
	scaleDown := flag.Int64("scaledown", 100, "benchmark scale divisor")
	flag.Parse()

	if err := run(*dataset, *sql, *indexes, *scaleDown); err != nil {
		fmt.Fprintln(os.Stderr, "explain:", err)
		os.Exit(1)
	}
}

func run(dataset, sql, indexes string, scaleDown int64) error {
	if sql == "" {
		return fmt.Errorf("-sql is required")
	}
	var s *schema.Schema
	switch dataset {
	case "tpch":
		s = bench.TPCH(scaleDown)
	case "tpcds":
		s = bench.TPCDS(scaleDown)
	case "transaction":
		s = bench.TRANSACTION(scaleDown)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	q, err := sqlx.Parse(sql)
	if err != nil {
		return err
	}
	cfg, err := parseIndexes(indexes)
	if err != nil {
		return err
	}
	e := engine.New(s)
	for _, mode := range []engine.Mode{engine.ModeEstimated, engine.ModeTrue} {
		p, err := e.Plan(q, cfg, mode)
		if err != nil {
			return err
		}
		fmt.Printf("-- %s statistics --\n%s", mode, p)
	}
	rc, err := e.RuntimeCost(q, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("runtime stand-in cost: %.2f\n", rc)
	return nil
}

// parseIndexes parses "table(col1,col2);table2(col)" into a Config.
func parseIndexes(spec string) (schema.Config, error) {
	var cfg schema.Config
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		open := strings.IndexByte(part, '(')
		if open <= 0 || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("bad index spec %q (want table(col,...))", part)
		}
		table := strings.TrimSpace(part[:open])
		var cols []string
		for _, c := range strings.Split(part[open+1:len(part)-1], ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				return nil, fmt.Errorf("bad index spec %q: empty column", part)
			}
			cols = append(cols, c)
		}
		if len(cols) == 0 {
			return nil, fmt.Errorf("bad index spec %q: no columns", part)
		}
		cfg = cfg.Add(schema.Index{Table: table, Columns: cols})
	}
	return cfg, nil
}
