// Command trapd is the long-running TRAP assessment service: it
// pre-builds per-dataset assessment suites, serves the HTTP JSON API of
// internal/service, runs assessment jobs on a bounded worker pool, and
// exposes runtime metrics at /metrics.
//
// Usage:
//
//	trapd [-addr :8080] [-datasets tpch,tpcds,transaction] [-scale quick|full]
//	      [-workers N] [-cost-workers N] [-train-workers N] [-assess-workers N]
//	      [-queue N] [-seed 42]
//	      [-request-timeout 30s] [-job-timeout 15m] [-max-body 1048576]
//	      [-max-retries 2] [-retry-backoff 100ms] [-job-ttl 1h] [-gc-interval 1m]
//	      [-spool DIR] [-checkpoint-every 1] [-inject SPEC] [-pprof]
//	      [-joblog DIR] [-node-id NAME] [-lease-ttl 15s] [-heartbeat 5s]
//	      [-tenant-qps N] [-tenant-burst N] [-priority-queue]
//	      [-log-level info] [-log-format text|json]
//	      [-trace-recent 64] [-trace-slow 8] [-trace-every 1]
//
// trapd shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests and running assessment jobs drain, and queued jobs
// are canceled. With -spool set, RL training checkpoints every
// -checkpoint-every epochs so canceled/crashed/retried jobs resume from
// the last completed epoch. -inject arms the deterministic fault
// harness (see internal/faultinject), e.g.
//
//	trapd -spool /tmp/trapd -inject 'core.rl.epoch:error:count=1'
//
// -joblog makes jobs durable: every transition is appended (fsync'd) to
// a CRC-framed log that is replayed on startup, so jobs interrupted by
// a process death are re-enqueued and — combined with -spool — resume
// mid-training. -tenant-qps arms per-tenant admission quotas (the
// X-Trap-Tenant request header identifies the tenant; over-quota
// submissions get 429 + Retry-After), and -priority-queue honors the
// X-Trap-Priority header (interactive jobs are dequeued before batch):
//
//	trapd -joblog /var/lib/trapd/joblog -spool /var/lib/trapd/spool \
//	      -tenant-qps 5 -tenant-burst 10 -priority-queue
//
// -node-id turns the job log into a shared fleet namespace: nodes
// register via heartbeat records, claim jobs through lease records
// carrying a monotonic fencing epoch, and take over the jobs of a node
// whose lease expires (resuming mid-training from the shared -spool).
// A paused or partitioned node that wakes after losing its lease is
// fenced — its stale appends are rejected and its in-flight training
// cancelled — so every job completes exactly once:
//
//	trapd -node-id n1 -joblog /shared/joblog -spool /shared/spool \
//	      -lease-ttl 15s -heartbeat 5s
//
// -train-workers and -assess-workers bound the RL rollout pool and the
// per-workload measurement pool inside each job; results are
// bit-identical for every value, so the knobs trade only wall-clock time
// against CPU. -pprof mounts net/http/pprof under /debug/pprof/ for
// profiling a running assessment:
//
//	go tool pprof 'http://localhost:8080/debug/pprof/profile?seconds=30'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/faultinject"
	olog "github.com/trap-repro/trap/internal/obs/log"
	"github.com/trap-repro/trap/internal/service"
	"github.com/trap-repro/trap/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	datasets := flag.String("datasets", "tpch", "comma-separated datasets to serve (tpch,tpcds,transaction)")
	scale := flag.String("scale", "quick", "suite parameters: quick or full")
	workers := flag.Int("workers", 0, "assessment worker pool size (default: NumCPU)")
	costWorkers := flag.Int("cost-workers", 0, "what-if CostBatch fan-out per engine (default: GOMAXPROCS; 1 = sequential)")
	trainWorkers := flag.Int("train-workers", 0, "RL trajectory rollout pool per framework (default: GOMAXPROCS; 1 = sequential)")
	assessWorkers := flag.Int("assess-workers", 0, "per-workload measurement pool per suite (default: GOMAXPROCS; 1 = sequential)")
	queue := flag.Int("queue", 0, "pending-job queue depth (default: 4x workers)")
	seed := flag.Int64("seed", 42, "random seed for suite construction")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "synchronous request deadline")
	jobTimeout := flag.Duration("job-timeout", 15*time.Minute, "assessment job deadline")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body bytes")
	maxRetries := flag.Int("max-retries", 2, "max retries for jobs failing on transient errors (negative disables)")
	retryBackoff := flag.Duration("retry-backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, plus jitter)")
	jobTTL := flag.Duration("job-ttl", time.Hour, "how long finished jobs stay queryable before GC")
	gcInterval := flag.Duration("gc-interval", time.Minute, "job garbage-collection interval")
	spool := flag.String("spool", "", "checkpoint spool directory (empty disables checkpoint/resume)")
	ckptEvery := flag.Int("checkpoint-every", 1, "RL epochs between training checkpoints")
	joblogDir := flag.String("joblog", "", "durable job-log directory (empty disables job durability)")
	nodeID := flag.String("node-id", "", "fleet node name: joins the cluster sharing -joblog as one job namespace (empty = single-node)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "job lease time-to-live before a peer may take over (cluster mode)")
	heartbeat := flag.Duration("heartbeat", 0, "node heartbeat/renewal interval (default: lease-ttl/3; cluster mode)")
	tenantQPS := flag.Float64("tenant-qps", 0, "per-tenant job submission rate (0 disables quotas)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant submission burst (default: ceil of -tenant-qps)")
	priorityQueue := flag.Bool("priority-queue", false, "honor the X-Trap-Priority header (interactive before batch)")
	injectSpec := flag.String("inject", "", "fault-injection rules, e.g. 'core.rl.epoch:error:count=1;engine.cost:delay:every=100,delay=5ms'")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof endpoints under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", olog.FormatText, "log format: text or json")
	traceRecent := flag.Int("trace-recent", 0, "recency ring size of the trace store (default 64)")
	traceSlow := flag.Int("trace-slow", 0, "slowest traces kept per operation (default 8)")
	traceEvery := flag.Int("trace-every", 1, "head-sampling stride: trace every Nth job (1 = all)")
	profileDir := flag.String("profile-dir", "", "continuous-profiling capture directory (empty disables)")
	profileThreshold := flag.Duration("profile-threshold", 0, "span duration that triggers a profile capture (default 1s)")
	profileKeep := flag.Int("profile-keep", 0, "profile captures retained before the oldest is pruned (default 8)")
	profileCPUWindow := flag.Duration("profile-cpu-window", 0, "CPU-profile window captured after a slow span (default 1s)")
	metricsInterval := flag.Duration("metrics-interval", 0, "fleet metrics publish interval (cluster mode; default 5s)")
	flag.Parse()

	level, err := olog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trapd:", err)
		os.Exit(1)
	}
	if *logFormat != olog.FormatText && *logFormat != olog.FormatJSON {
		fmt.Fprintf(os.Stderr, "trapd: unknown log format %q (want text or json)\n", *logFormat)
		os.Exit(1)
	}
	logger := olog.New(os.Stderr, level, *logFormat)

	parsed, err := faultinject.Parse(*injectSpec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trapd:", err)
		os.Exit(1)
	}
	// Assign through the interface only when armed: a typed-nil *Seeded
	// stored in the Injector interface would defeat the nil check in
	// faultinject.Fire and panic at the first injection point.
	var injector faultinject.Injector
	if parsed != nil {
		injector = parsed
		fmt.Fprintln(os.Stderr, "trapd: FAULT INJECTION ARMED:", *injectSpec)
	}

	p := assess.QuickParams()
	if *scale == "full" {
		p = assess.FullParams()
	} else if *scale != "quick" {
		fmt.Fprintf(os.Stderr, "trapd: unknown scale %q (want quick or full)\n", *scale)
		os.Exit(1)
	}

	var names []string
	for _, d := range strings.Split(*datasets, ",") {
		if d = strings.TrimSpace(d); d != "" {
			names = append(names, d)
		}
	}

	srv, err := service.NewServer(service.Config{
		Addr:              *addr,
		Datasets:          names,
		Params:            p,
		Seed:              *seed,
		Workers:           *workers,
		CostWorkers:       *costWorkers,
		TrainWorkers:      *trainWorkers,
		AssessWorkers:     *assessWorkers,
		QueueDepth:        *queue,
		RequestTimeout:    *reqTimeout,
		JobTimeout:        *jobTimeout,
		MaxBodyBytes:      *maxBody,
		MaxRetries:        *maxRetries,
		RetryBackoff:      *retryBackoff,
		JobTTL:            *jobTTL,
		GCInterval:        *gcInterval,
		SpoolDir:          *spool,
		CheckpointEvery:   *ckptEvery,
		JobLogDir:         *joblogDir,
		NodeID:            *nodeID,
		LeaseTTL:          *leaseTTL,
		HeartbeatInterval: *heartbeat,
		TenantQPS:         *tenantQPS,
		TenantBurst:       *tenantBurst,
		PriorityQueue:     *priorityQueue,
		Injector:          injector,
		EnablePprof:       *enablePprof,
		ProfileDir:        *profileDir,
		ProfileThreshold:  *profileThreshold,
		ProfileKeep:       *profileKeep,
		ProfileCPUWindow:  *profileCPUWindow,
		MetricsInterval:   *metricsInterval,
		Logger:            logger,
		Tracer: trace.New(trace.Options{
			Recent: *traceRecent, SlowPerOp: *traceSlow, Every: *traceEvery,
		}),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trapd:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "trapd:", err)
		os.Exit(1)
	}
}
