// Command trapd is the long-running TRAP assessment service: it
// pre-builds per-dataset assessment suites, serves the HTTP JSON API of
// internal/service, runs assessment jobs on a bounded worker pool, and
// exposes runtime metrics at /metrics.
//
// Usage:
//
//	trapd [-addr :8080] [-datasets tpch,tpcds,transaction] [-scale quick|full]
//	      [-workers N] [-queue N] [-seed 42]
//	      [-request-timeout 30s] [-job-timeout 15m] [-max-body 1048576]
//
// trapd shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests and running assessment jobs drain, and queued jobs
// are canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	datasets := flag.String("datasets", "tpch", "comma-separated datasets to serve (tpch,tpcds,transaction)")
	scale := flag.String("scale", "quick", "suite parameters: quick or full")
	workers := flag.Int("workers", 0, "assessment worker pool size (default: NumCPU)")
	queue := flag.Int("queue", 0, "pending-job queue depth (default: 4x workers)")
	seed := flag.Int64("seed", 42, "random seed for suite construction")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "synchronous request deadline")
	jobTimeout := flag.Duration("job-timeout", 15*time.Minute, "assessment job deadline")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body bytes")
	flag.Parse()

	p := assess.QuickParams()
	if *scale == "full" {
		p = assess.FullParams()
	} else if *scale != "quick" {
		fmt.Fprintf(os.Stderr, "trapd: unknown scale %q (want quick or full)\n", *scale)
		os.Exit(1)
	}

	var names []string
	for _, d := range strings.Split(*datasets, ",") {
		if d = strings.TrimSpace(d); d != "" {
			names = append(names, d)
		}
	}

	srv, err := service.NewServer(service.Config{
		Addr:           *addr,
		Datasets:       names,
		Params:         p,
		Seed:           *seed,
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *reqTimeout,
		JobTimeout:     *jobTimeout,
		MaxBodyBytes:   *maxBody,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trapd:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "trapd:", err)
		os.Exit(1)
	}
}
