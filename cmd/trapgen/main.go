// Command trapgen trains TRAP against one index advisor and prints the
// adversarial workloads it generates, side by side with the originals and
// the per-workload IUDR.
//
// Usage:
//
//	trapgen [-dataset tpch] [-advisor Extend] [-constraint shared|column|value]
//	        [-eps 5] [-workloads 4] [-seed 42] [-scale quick|full]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "tpch", "tpch, tpcds or transaction")
	advName := flag.String("advisor", "Extend", "advisor to attack")
	constraint := flag.String("constraint", "shared", "value, column or shared")
	eps := flag.Int("eps", 5, "maximum edit distance")
	nWorkloads := flag.Int("workloads", 4, "workloads to perturb")
	seed := flag.Int64("seed", 42, "random seed")
	scale := flag.String("scale", "quick", "quick or full")
	out := flag.String("out", "", "optional file to write the perturbed workloads as SQL")
	flag.Parse()

	if err := run(*dataset, *advName, *constraint, *eps, *nWorkloads, *seed, *scale, *out); err != nil {
		fmt.Fprintln(os.Stderr, "trapgen:", err)
		os.Exit(1)
	}
}

func run(dataset, advName, constraint string, eps, nWorkloads int, seed int64, scale, out string) error {
	p := assess.QuickParams()
	if scale == "full" {
		p = assess.FullParams()
	}
	p.Eps = eps

	var s *schema.Schema
	switch dataset {
	case "tpch":
		s = bench.TPCH(p.ScaleDown)
	case "tpcds":
		s = bench.TPCDS(p.ScaleDown)
	case "transaction":
		s = bench.TRANSACTION(p.ScaleDown)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	var pc core.PerturbConstraint
	switch constraint {
	case "value":
		pc = core.ValueOnly
	case "column":
		pc = core.ColumnConsistent
	case "shared":
		pc = core.SharedTable
	default:
		return fmt.Errorf("unknown constraint %q", constraint)
	}

	suite, err := assess.NewSuite(dataset, s, p, seed)
	if err != nil {
		return err
	}
	spec, err := assess.SpecByName(advName)
	if err != nil {
		return err
	}
	fmt.Printf("training %s on %s ...\n", advName, dataset)
	adv, err := suite.BuildAdvisor(spec)
	if err != nil {
		return err
	}
	base := suite.BaselineAdvisor(spec)
	ac := suite.ConstraintFor(spec)
	fmt.Printf("training TRAP against %s under %s (eps=%d) ...\n", advName, pc, eps)
	m, err := suite.BuildMethod(context.Background(), "TRAP", pc, adv, base, ac, assess.MethodConfig{})
	if err != nil {
		return err
	}

	shown := 0
	collected := &workload.Workload{}
	for _, w := range suite.Test {
		if shown >= nWorkloads {
			break
		}
		u, err := suite.UtilityOf(adv, base, ac, w)
		if err != nil || u <= p.Theta {
			continue
		}
		variants, err := m.Variants(context.Background(), w)
		if err != nil {
			return err
		}
		pert := variants[0]
		uPert, err := suite.UtilityOf(adv, base, ac, pert)
		if err != nil {
			continue
		}
		collected.Items = append(collected.Items, pert.Items...)
		shown++
		fmt.Printf("\n--- workload %d: u=%.4f u'=%.4f IUDR=%.4f ---\n", shown, u, uPert, 1-uPert/u)
		for i := range w.Items {
			orig, p2 := w.Items[i].Query, pert.Items[i].Query
			d := sqlx.EditDistance(orig, p2)
			fmt.Printf("  original:  %s\n", orig)
			if d == 0 {
				fmt.Printf("  perturbed: (unchanged)\n")
			} else {
				fmt.Printf("  perturbed: %s   [%d edits]\n", p2, d)
			}
		}
	}
	if shown == 0 {
		fmt.Println("no properly-operating workloads at this scale; try -scale full")
	}
	if out != "" && collected.Size() > 0 {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := collected.WriteSQL(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d perturbed queries to %s\n", collected.Size(), out)
	}
	return nil
}
