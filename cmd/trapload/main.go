// Command trapload is the service-level load harness: it boots an
// in-process trapd server and slams it with concurrent assessment
// submissions across many tenants, honoring Retry-After on every shed,
// then waits for the fleet of jobs to finish and writes the measured
// SLOs (admission latency, queue wait, throughput, shed counts, tenant
// fairness) as JSON:
//
//	trapload -jobs 1000 -clients 64 -tenants 8 -out BENCH_service.json
//
// With -chaos-nodes N it instead runs the multi-node chaos drill: N
// in-process fleet nodes share one job namespace, the node owning a
// running RL-training job is killed mid-training, and the measured
// failover SLOs (takeover latency, exactly-once completion) are written
// to the report's "chaos" section:
//
//	trapload -chaos-nodes 3 -chaos-jobs 2 -out BENCH_chaos.json
//
// The harness exercises the whole cluster-grade job path — admission
// quotas (429), capacity shedding (503), the priority queue, the worker
// pool, and job GC bookkeeping — without a network: clients drive
// http.Handler directly, so the latencies are the service's own, not
// the kernel's. Exit status is non-zero when an SLO is violated (a job
// never completed, a shed response lacked Retry-After, or admission
// p99 exceeded -slo-admit-p99).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/service"
)

// loadParams is the reduced assessment scale the harness runs at: the
// point is queue/admission behavior under many jobs, not model quality,
// so each job is a fast Random-method assessment.
func loadParams() assess.Params {
	p := assess.QuickParams()
	p.Templates = 8
	p.TrainWorkloads = 3
	p.TestWorkloads = 3
	p.WorkloadSize = 4
	p.UtilitySamples = 200
	p.PretrainPairs = 4
	p.PretrainEpochs = 1
	p.RLEpochs = 1
	p.AdvisorEpisodes = 8
	return p
}

// report is the BENCH_service.json shape: configuration, counters, and
// the measured SLOs of one harness run.
type report struct {
	Jobs        int     `json:"jobs"`
	Clients     int     `json:"clients"`
	Tenants     int     `json:"tenants"`
	Workers     int     `json:"workers"`
	QueueDepth  int     `json:"queue_depth"`
	TenantQPS   float64 `json:"tenant_qps"`
	TenantBurst int     `json:"tenant_burst"`

	Accepted     int64 `json:"accepted"`
	ShedQuota    int64 `json:"shed_quota"`    // 429 responses observed
	ShedCapacity int64 `json:"shed_capacity"` // 503 responses observed
	Retries      int64 `json:"retries"`
	GiveUps      int64 `json:"give_ups"`

	AdmitP50Ms float64 `json:"admit_p50_ms"` // POST /v1/assess round latency
	AdmitP95Ms float64 `json:"admit_p95_ms"`
	AdmitP99Ms float64 `json:"admit_p99_ms"`
	AdmitMaxMs float64 `json:"admit_max_ms"`

	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"` // created → started
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	ExecP50Ms      float64 `json:"exec_p50_ms"` // started → finished
	ExecP99Ms      float64 `json:"exec_p99_ms"`

	Done          int     `json:"done"`
	Failed        int     `json:"failed"`
	WallSeconds   float64 `json:"wall_seconds"`
	JobsPerSecond float64 `json:"jobs_per_second"`

	TenantMinDone int     `json:"tenant_min_done"`
	TenantMaxDone int     `json:"tenant_max_done"`
	FairnessRatio float64 `json:"fairness_ratio"` // max/min done per tenant

	// Telemetry-scrape latency: GET /v1/jobs/{id}/telemetry issued
	// continuously while the job fleet runs, measuring how expensive the
	// observability read path is under load.
	TelemetryScrapes     int     `json:"telemetry_scrapes"`
	TelemetryScrapeP50Ms float64 `json:"telemetry_scrape_p50_ms"`
	TelemetryScrapeP99Ms float64 `json:"telemetry_scrape_p99_ms"`

	MaxRetryAfterSec int  `json:"max_retry_after_sec"`
	SLOViolated      bool `json:"slo_violated"`
}

func main() {
	jobs := flag.Int("jobs", 1000, "total assessment jobs to push through")
	clients := flag.Int("clients", 64, "concurrent submitting clients")
	tenants := flag.Int("tenants", 8, "distinct tenants the jobs are spread over")
	workers := flag.Int("workers", 0, "server worker pool size (default: NumCPU)")
	queue := flag.Int("queue", 0, "server queue depth (default: 4x workers)")
	tenantQPS := flag.Float64("tenant-qps", 4, "per-tenant admission rate (0 disables quotas)")
	tenantBurst := flag.Int("tenant-burst", 4, "per-tenant admission burst")
	interactiveEvery := flag.Int("interactive-every", 4, "every Nth job is submitted interactive (0 = all batch)")
	seed := flag.Int64("seed", 42, "suite construction seed")
	maxAttempts := flag.Int("max-attempts", 200, "submission attempts per job before giving up")
	sloAdmitP99 := flag.Duration("slo-admit-p99", 250*time.Millisecond, "admission latency p99 budget")
	timeout := flag.Duration("timeout", 15*time.Minute, "whole-run deadline")
	out := flag.String("out", "BENCH_service.json", "output path for the JSON report")
	chaosNodes := flag.Int("chaos-nodes", 0, "run the multi-node chaos drill with N fleet nodes instead of the load run (0 disables)")
	chaosJobs := flag.Int("chaos-jobs", 2, "RL-training jobs the chaos drill submits across the fleet")
	flag.Parse()

	if *chaosNodes > 0 {
		if err := runChaos(*chaosNodes, *chaosJobs, *seed, *timeout, *out); err != nil {
			fmt.Fprintln(os.Stderr, "trapload:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*jobs, *clients, *tenants, *workers, *queue, *tenantQPS, *tenantBurst,
		*interactiveEvery, *seed, *maxAttempts, *sloAdmitP99, *timeout, *out); err != nil {
		fmt.Fprintln(os.Stderr, "trapload:", err)
		os.Exit(1)
	}
}

func run(jobs, clients, tenants, workers, queue int, tenantQPS float64, tenantBurst,
	interactiveEvery int, seed int64, maxAttempts int, sloAdmitP99, timeout time.Duration, out string) error {
	srv, err := service.NewServer(service.Config{
		Datasets:      []string{"tpch"},
		Params:        loadParams(),
		Seed:          seed,
		Workers:       workers,
		QueueDepth:    queue,
		JobTimeout:    5 * time.Minute,
		TenantQPS:     tenantQPS,
		TenantBurst:   tenantBurst,
		PriorityQueue: true,
		Registry:      obs.NewRegistry(),
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	h := srv.Handler()
	deadline := time.Now().Add(timeout)

	var (
		accepted, shedQuota, shedCapacity, retries, giveUps atomic.Int64
		maxRetryAfter                                       atomic.Int64
		badShed                                             atomic.Int64

		mu       sync.Mutex
		admitLat []time.Duration
		ids      []string
		idTenant = map[string]string{}
	)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				tenant := fmt.Sprintf("t%02d", i%tenants)
				body := `{"dataset":"tpch","advisor":"Drop","method":"Random"}`
				for attempt := 1; ; attempt++ {
					req := httptest.NewRequest("POST", "/v1/assess", strings.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set("X-Trap-Tenant", tenant)
					if interactiveEvery > 0 && i%interactiveEvery == 0 {
						req.Header.Set("X-Trap-Priority", "interactive")
					}
					rec := httptest.NewRecorder()
					t0 := time.Now()
					h.ServeHTTP(rec, req)
					lat := time.Since(t0)
					mu.Lock()
					admitLat = append(admitLat, lat)
					mu.Unlock()

					switch rec.Code {
					case http.StatusAccepted:
						var j service.Job
						if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
							fmt.Fprintf(os.Stderr, "trapload: bad accept body: %v\n", err)
							giveUps.Add(1)
						} else {
							accepted.Add(1)
							mu.Lock()
							ids = append(ids, j.ID)
							idTenant[j.ID] = tenant
							mu.Unlock()
						}
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
						if rec.Code == http.StatusTooManyRequests {
							shedQuota.Add(1)
						} else {
							shedCapacity.Add(1)
						}
						ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
						if err != nil || ra < 1 {
							// Every shed must carry an actionable Retry-After.
							badShed.Add(1)
							ra = 1
						}
						if int64(ra) > maxRetryAfter.Load() {
							maxRetryAfter.Store(int64(ra))
						}
						if attempt < maxAttempts && time.Now().Add(time.Duration(ra)*time.Second).Before(deadline) {
							retries.Add(1)
							time.Sleep(time.Duration(ra) * time.Second)
							continue
						}
						giveUps.Add(1)
					default:
						fmt.Fprintf(os.Stderr, "trapload: unexpected status %d: %s\n",
							rec.Code, rec.Body.String())
						giveUps.Add(1)
					}
					break
				}
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	fmt.Fprintf(os.Stderr, "trapload: submitted %d jobs in %.1fs (quota sheds %d, capacity sheds %d, retries %d)\n",
		accepted.Load(), time.Since(start).Seconds(), shedQuota.Load(), shedCapacity.Load(), retries.Load())

	// Scrape job telemetry continuously while the fleet drains, so the
	// report captures the observability read path's latency under load.
	var scrapeLat []time.Duration
	scrapeStop := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for k := 0; ; k++ {
			select {
			case <-scrapeStop:
				return
			default:
			}
			if len(ids) == 0 {
				return
			}
			req := httptest.NewRequest("GET", "/v1/jobs/"+ids[k%len(ids)]+"/telemetry", nil)
			rec := httptest.NewRecorder()
			t0 := time.Now()
			h.ServeHTTP(rec, req)
			if rec.Code == http.StatusOK {
				scrapeLat = append(scrapeLat, time.Since(t0))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Wait for every accepted job to reach a terminal state.
	finals := make(map[string]service.Job, len(ids))
	pendingIDs := append([]string(nil), ids...)
	for len(pendingIDs) > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("deadline: %d jobs still not terminal", len(pendingIDs))
		}
		remaining := pendingIDs[:0]
		for _, id := range pendingIDs {
			req := httptest.NewRequest("GET", "/v1/jobs/"+id, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return fmt.Errorf("job %s: status %d", id, rec.Code)
			}
			var j service.Job
			if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
				return fmt.Errorf("job %s: %w", id, err)
			}
			switch j.Status {
			case service.JobDone, service.JobFailed, service.JobCanceled:
				finals[id] = j
			default:
				remaining = append(remaining, id)
			}
		}
		pendingIDs = remaining
		if len(pendingIDs) > 0 {
			time.Sleep(50 * time.Millisecond)
		}
	}
	wall := time.Since(start)
	close(scrapeStop)
	<-scrapeDone

	// Fold the terminal snapshots into the report.
	var queueWait, exec []time.Duration
	perTenant := map[string]int{}
	done, failed := 0, 0
	for id, j := range finals {
		if j.Status == service.JobDone {
			done++
			perTenant[idTenant[id]]++
		} else {
			failed++
			fmt.Fprintf(os.Stderr, "trapload: job %s ended %s: %s\n", id, j.Status, j.Error)
		}
		if j.Started != nil {
			queueWait = append(queueWait, j.Started.Sub(j.Created))
			if j.Finished != nil {
				exec = append(exec, j.Finished.Sub(*j.Started))
			}
		}
	}
	minDone, maxDone := -1, 0
	for i := 0; i < tenants; i++ {
		n := perTenant[fmt.Sprintf("t%02d", i)]
		if minDone < 0 || n < minDone {
			minDone = n
		}
		if n > maxDone {
			maxDone = n
		}
	}
	fairness := 0.0
	if minDone > 0 {
		fairness = float64(maxDone) / float64(minDone)
	}

	r := report{
		Jobs: jobs, Clients: clients, Tenants: tenants,
		Workers: workers, QueueDepth: queue,
		TenantQPS: tenantQPS, TenantBurst: tenantBurst,
		Accepted: accepted.Load(), ShedQuota: shedQuota.Load(),
		ShedCapacity: shedCapacity.Load(), Retries: retries.Load(), GiveUps: giveUps.Load(),
		AdmitP50Ms: ms(pct(admitLat, 0.50)), AdmitP95Ms: ms(pct(admitLat, 0.95)),
		AdmitP99Ms: ms(pct(admitLat, 0.99)), AdmitMaxMs: ms(pct(admitLat, 1.0)),
		QueueWaitP50Ms: ms(pct(queueWait, 0.50)), QueueWaitP99Ms: ms(pct(queueWait, 0.99)),
		ExecP50Ms: ms(pct(exec, 0.50)), ExecP99Ms: ms(pct(exec, 0.99)),
		Done: done, Failed: failed,
		WallSeconds:   wall.Seconds(),
		JobsPerSecond: float64(done) / wall.Seconds(),
		TenantMinDone: minDone, TenantMaxDone: maxDone, FairnessRatio: fairness,
		TelemetryScrapes:     len(scrapeLat),
		TelemetryScrapeP50Ms: ms(pct(scrapeLat, 0.50)),
		TelemetryScrapeP99Ms: ms(pct(scrapeLat, 0.99)),
		MaxRetryAfterSec:     int(maxRetryAfter.Load()),
	}
	r.SLOViolated = failed > 0 || giveUps.Load() > 0 || badShed.Load() > 0 ||
		done != jobs || pct(admitLat, 0.99) > sloAdmitP99

	js, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(js, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"trapload: %d/%d done in %.1fs (%.1f jobs/s), admit p99 %.2fms, queue-wait p99 %.0fms, fairness %.2f, telemetry-scrape p99 %.2fms (%d scrapes)\n",
		done, jobs, wall.Seconds(), r.JobsPerSecond, r.AdmitP99Ms, r.QueueWaitP99Ms, fairness,
		r.TelemetryScrapeP99Ms, r.TelemetryScrapes)
	fmt.Fprintf(os.Stderr, "trapload: wrote %s\n", out)

	if badShed.Load() > 0 {
		return fmt.Errorf("%d shed responses lacked a usable Retry-After", badShed.Load())
	}
	if r.SLOViolated {
		return fmt.Errorf("SLO violated: done=%d/%d failed=%d give_ups=%d admit_p99=%.2fms (budget %s)",
			done, jobs, failed, giveUps.Load(), r.AdmitP99Ms, sloAdmitP99)
	}
	return nil
}

// pct returns the q-quantile of ds (nearest-rank); zero when empty.
func pct(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
