package main

// The multi-node chaos drill (-chaos-nodes N): boots a fleet of
// in-process trapd nodes sharing one job namespace through a cluster
// bus, submits RL-training jobs, SIGKILL-style tears down the node
// owning the first job mid-training, and measures the fleet's failover
// SLOs: takeover latency (kill to a survivor holding the lease at a
// higher fencing epoch) and exactly-once completion (no lost jobs, no
// double results), verified post-mortem by replaying the shared log.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/joblog"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/service"
)

// chaosReport is the "chaos" section of BENCH_service.json.
type chaosReport struct {
	Nodes             int     `json:"nodes"`
	Jobs              int     `json:"jobs"`
	KilledNode        string  `json:"killed_node"`
	TakeoverLatencyMs float64 `json:"takeover_latency_ms"`
	Takeovers         int64   `json:"takeovers"`
	FenceRejects      int64   `json:"fence_rejects"`
	Done              int     `json:"done"`
	LostJobs          int     `json:"lost_jobs"`
	DoubleResults     int     `json:"double_results"`
	WallSeconds       float64 `json:"wall_seconds"`
	SLOViolated       bool    `json:"slo_violated"`
}

// chaosParams stretches training so the drill has time to kill the
// owner mid-run: GRU jobs RL-train for several epochs, each delayed by
// an injected pause (delays never change training results).
func chaosParams() assess.Params {
	p := loadParams()
	p.RLEpochs = 4
	return p
}

const (
	chaosLeaseTTL   = 900 * time.Millisecond
	chaosHeartbeat  = 250 * time.Millisecond
	chaosEpochDelay = 300 * time.Millisecond
	// chaosSLOTakeover bounds takeover latency: lease expiry plus a few
	// reconcile ticks, with generous headroom for loaded CI machines.
	chaosSLOTakeover = 10 * time.Second
)

func runChaos(nodes, jobs int, seed int64, timeout time.Duration, out string) error {
	base, err := os.MkdirTemp("", "trapload-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)
	logDir := filepath.Join(base, "joblog")
	spool := filepath.Join(base, "spool")

	bus, err := service.NewFleetBus(logDir, 0)
	if err != nil {
		return err
	}
	names := make([]string, nodes)
	srvs := map[string]*service.Server{}
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i+1)
		srv, err := service.NewServer(service.Config{
			Datasets:          []string{"tpch"},
			Params:            chaosParams(),
			Seed:              seed,
			Workers:           1,
			QueueDepth:        jobs + 1,
			JobTimeout:        5 * time.Minute,
			Registry:          obs.NewRegistry(),
			Logf:              func(string, ...any) {},
			NodeID:            names[i],
			Bus:               bus,
			SpoolDir:          spool,
			CheckpointEvery:   1,
			LeaseTTL:          chaosLeaseTTL,
			HeartbeatInterval: chaosHeartbeat,
			Injector: faultinject.NewSeeded(seed, faultinject.Rule{
				Point: faultinject.PointRLEpoch, Action: faultinject.ActDelay,
				Every: 1, Delay: chaosEpochDelay,
			}),
		})
		if err != nil {
			return err
		}
		srvs[names[i]] = srv
	}
	closed := false
	closeAll := func() {
		if closed {
			return
		}
		closed = true
		for _, s := range srvs {
			s.Close()
		}
		bus.Close()
	}
	defer closeAll()

	start := time.Now()
	deadline := start.Add(timeout)
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		h := srvs[names[i%nodes]].Handler()
		req := httptest.NewRequest("POST", "/v1/assess",
			strings.NewReader(`{"dataset":"tpch","advisor":"Drop","method":"GRU"}`))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			return fmt.Errorf("chaos submit %d: %d %s", i, rec.Code, rec.Body.String())
		}
		var j service.Job
		if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
			return err
		}
		ids = append(ids, j.ID)
	}

	// Wait for the first job to be owned and checkpointed, then tear its
	// owner down without any graceful shutdown.
	var victim string
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: no owned+checkpointed job within %s", timeout)
		}
		l, open := bus.Lease(ids[0])
		ck, _ := filepath.Glob(filepath.Join(spool, "*.ckpt"))
		if open && l.Node != "" && len(ck) > 0 {
			victim = l.Node
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	killAt := time.Now()
	srvs[victim].KillNode()
	fmt.Fprintf(os.Stderr, "trapload: chaos killed %s (owner of %s) mid-training\n", victim, ids[0])

	// Takeover latency: kill until a survivor holds the first job's
	// lease at a higher fencing epoch.
	var takeoverLat time.Duration
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: job %s never taken over from %s", ids[0], victim)
		}
		l, open := bus.Lease(ids[0])
		if !open { // already completed under a survivor
			takeoverLat = time.Since(killAt)
			break
		}
		if l.Node != "" && l.Node != victim {
			takeoverLat = time.Since(killAt)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	var survivor string
	for _, n := range names {
		if n != victim {
			survivor = n
			break
		}
	}
	h := srvs[survivor].Handler()
	done := 0
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("chaos: job %s not terminal within %s", id, timeout)
			}
			req := httptest.NewRequest("GET", "/v1/jobs/"+id, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			var j service.Job
			if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
				return fmt.Errorf("chaos poll %s: %w", id, err)
			}
			if j.Status == service.JobDone {
				done++
				break
			}
			if j.Status == service.JobFailed || j.Status == service.JobCanceled {
				fmt.Fprintf(os.Stderr, "trapload: chaos job %s ended %s: %s\n", id, j.Status, j.Error)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	wall := time.Since(start)
	stats := bus.Stats()

	// Post-mortem: replay the shared log and count terminal done records
	// per job — exactly one each means nothing was lost or doubled.
	closeAll()
	doneRecs := map[string]int{}
	l, err := joblog.Open(logDir, joblog.Options{Replay: func(r joblog.Record) error {
		if r.Type != "state" && r.Type != "submit" {
			return nil
		}
		var j service.Job
		if json.Unmarshal(r.Data, &j) == nil && j.Status == service.JobDone {
			doneRecs[j.ID]++
		}
		return nil
	}})
	if err != nil {
		return fmt.Errorf("chaos replay: %w", err)
	}
	l.Close()
	lost, doubled := 0, 0
	for _, id := range ids {
		switch n := doneRecs[id]; {
		case n == 0:
			lost++
		case n > 1:
			doubled++
		}
	}

	cr := chaosReport{
		Nodes:             nodes,
		Jobs:              jobs,
		KilledNode:        victim,
		TakeoverLatencyMs: ms(takeoverLat),
		Takeovers:         stats.Takeovers,
		FenceRejects:      stats.FenceRejects,
		Done:              done,
		LostJobs:          lost,
		DoubleResults:     doubled,
		WallSeconds:       wall.Seconds(),
	}
	cr.SLOViolated = done != jobs || lost > 0 || doubled > 0 ||
		stats.Takeovers < 1 || takeoverLat > chaosSLOTakeover

	// Merge into an existing report (the load run's SLOs) rather than
	// clobbering it: the chaos section rides alongside.
	full := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(out); err == nil {
		_ = json.Unmarshal(prev, &full)
	}
	crJSON, err := json.Marshal(cr)
	if err != nil {
		return err
	}
	full["chaos"] = crJSON
	js, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(js, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"trapload: chaos %d/%d done in %.1fs, takeover %.0fms, takeovers %d, lost %d, doubled %d\n",
		done, jobs, wall.Seconds(), cr.TakeoverLatencyMs, stats.Takeovers, lost, doubled)
	fmt.Fprintf(os.Stderr, "trapload: wrote %s\n", out)
	if cr.SLOViolated {
		return fmt.Errorf("chaos SLO violated: done=%d/%d lost=%d doubled=%d takeover=%.0fms (budget %s)",
			done, jobs, lost, doubled, cr.TakeoverLatencyMs, chaosSLOTakeover)
	}
	return nil
}
