package main

// The -bench mode: a machine-readable performance harness over the
// repo's hot paths. Each entry is timed with testing.Benchmark and the
// results are written as a JSON array (default BENCH_train.json), one
// object per (op, workers) cell, so regressions can be diffed by
// machines rather than eyeballs:
//
//	experiments -bench -bench-out BENCH_train.json
//
// The worker-swept ops (RLTrain, Measure, CostBatch) are bit-identical
// across worker counts — the sweep measures wall-clock scaling only.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/buildinfo"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/workload"
)

// benchRecord is one measured cell of the harness output. GitRev and
// Gomaxprocs stamp each cell with its provenance, so results from
// several runs (the file is appended to, not overwritten) remain
// attributable to the code revision and CPU budget that produced them.
type benchRecord struct {
	Op          string `json:"op"`
	Workers     int    `json:"workers"` // 0: not worker-swept
	N           int    `json:"n"`       // iterations the timing averaged over
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	GitRev      string `json:"git_rev,omitempty"`
	Gomaxprocs  int    `json:"gomaxprocs,omitempty"`
}

// gitRev returns the binary's stamped revision, falling back to asking
// the working tree's git directly (benches usually run via `go run`,
// where no VCS stamp is embedded), or "unknown" outside a checkout.
func gitRev() string {
	if rev := buildinfo.Get().GitRev; rev != "unknown" {
		return rev
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// benchParams mirrors the reduced scale of the root benchmark suite.
func benchParams() assess.Params {
	p := assess.QuickParams()
	p.Templates = 8
	p.TrainWorkloads = 4
	p.TestWorkloads = 4
	p.WorkloadSize = 5
	p.UtilitySamples = 250
	p.PretrainPairs = 4
	p.PretrainEpochs = 1
	p.RLEpochs = 2
	p.AdvisorEpisodes = 10
	return p
}

func runBench(out string, seed int64) error {
	ctx := context.Background()

	// Core-layer fixture: schema, generator, vocabulary, engine — the
	// same reduced TPC-H scale the internal/core benchmarks use.
	sc := bench.TPCH(100)
	gen := workload.NewGenerator(sc, 21, 10)
	var vocabWs []*workload.Workload
	for i := 0; i < 4; i++ {
		vocabWs = append(vocabWs, gen.Workload(5))
	}
	v := core.BuildVocab(sc, vocabWs)
	var train []*workload.Workload
	for i := 0; i < 3; i++ {
		train = append(train, gen.Workload(3))
	}
	e := engine.New(sc)
	adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	cons := advisor.Constraint{StorageBytes: e.Schema().TotalSizeBytes() / 2}

	newFW := func(model string, s int64) *core.Framework {
		rng := rand.New(rand.NewSource(s))
		var m core.Scorer
		switch model {
		case "TRAP":
			m = core.NewTRAPModel(v, core.Sizes{Embed: 16, Hidden: 16}, rng)
		default:
			m = core.NewGRUModel(v, core.Sizes{Embed: 16, Hidden: 16}, rng)
		}
		fw := core.NewFramework(m, v, core.SharedTable, s+100)
		fw.Theta = 0.02
		return fw
	}

	// Warm-up: the first training pass registers unseen tokens in the
	// shared vocabulary and fills the advisor caches, so every timed
	// build afterwards starts from the same state.
	{
		fw := newFW("GRU", seed)
		fw.Batch = 4
		if _, err := fw.RLTrain(ctx, e, adv, nil, cons, train, 1); err != nil {
			return fmt.Errorf("bench warm-up: %w", err)
		}
	}

	var results []benchRecord
	var benchErr error
	rev := gitRev()
	procs := runtime.GOMAXPROCS(0)
	// Each cell is measured benchReps times over short fixed windows and
	// the fastest rep is kept: on a small shared machine a single long
	// testing.Benchmark window is dominated by scheduler and GC noise,
	// while several short windows almost always catch a quiet stretch —
	// for a deterministic workload the minimum is the noise-robust
	// estimator of its cost.
	testing.Init()
	if err := flag.Set("test.benchtime", "20x"); err != nil {
		return err
	}
	const benchReps = 5
	record := func(op string, workers int, f func(b *testing.B)) {
		if benchErr != nil {
			return
		}
		var best testing.BenchmarkResult
		for rep := 0; rep < benchReps; rep++ {
			runtime.GC() // don't bill one rep for the previous rep's garbage
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				f(b)
			})
			if r.N == 0 {
				benchErr = fmt.Errorf("bench %s (workers=%d) failed", op, workers)
				return
			}
			if rep == 0 || r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		results = append(results, benchRecord{
			Op: op, Workers: workers, N: best.N,
			NsPerOp:     best.NsPerOp(),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
			GitRev:      rev,
			Gomaxprocs:  procs,
		})
		fmt.Fprintf(os.Stderr, "bench: %-24s workers=%d  %12d ns/op  %8d allocs/op\n",
			op, workers, best.NsPerOp(), best.AllocsPerOp())
	}

	// Rollout: one trajectory's greedy forward decode on a warm arena —
	// the unit of work the RL rollout pool schedules.
	rolloutFW := newFW("GRU", seed+1)
	record("Rollout", 0, func(b *testing.B) {
		g := nn.NewGraph(false)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			for _, it := range train[0].Items {
				if _, err := core.Decode(g, rolloutFW.Model, rolloutFW.Vocab, it.Query,
					rolloutFW.Constraint, rolloutFW.Eps, false, rng); err != nil {
					b.Fatal(err)
				}
			}
			g.Reset()
		}
	})

	// Pretrain: data synthesis + teacher forcing on one reused graph.
	record("Pretrain", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fw := newFW("TRAP", seed+2)
			if _, err := fw.Pretrain(ctx, gen, 4, 1); err != nil {
				b.Fatal(err)
			}
		}
	})

	// RLTrain: one REINFORCE epoch per iteration, swept over rollout
	// pool sizes.
	for _, workers := range []int{1, 2, 4} {
		record("RLTrain", workers, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fw := newFW("GRU", seed+3)
				fw.Batch = 4
				fw.RolloutWorkers = workers
				if _, err := fw.RLTrain(ctx, e, adv, nil, cons, train, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Assessment-layer fixture for Measure and CostBatch.
	p := benchParams()
	st, err := assess.NewSuite("tpch", bench.TPCH(p.ScaleDown), p, seed)
	if err != nil {
		return err
	}
	sadv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	method, err := st.BuildMethod(ctx, "Random", core.ValueOnly, sadv, nil, st.Storage, assess.MethodConfig{})
	if err != nil {
		return err
	}
	for _, workers := range []int{1, 2, 4} {
		record("Measure", workers, func(b *testing.B) {
			st.MeasureWorkers = workers
			defer func() { st.MeasureWorkers = 0 }()
			for i := 0; i < b.N; i++ {
				if _, err := st.Measure(ctx, method, sadv, nil, st.Storage); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	var items []engine.CostItem
	for _, w := range append(append([]*workload.Workload(nil), st.Train...), st.Test...) {
		for _, it := range w.Items {
			items = append(items, engine.CostItem{Q: it.Query, Weight: it.Weight})
		}
	}
	var cfg schema.Config
	for i, col := range st.Test[0].Columns() {
		if i >= 4 {
			break
		}
		cfg = cfg.Add(schema.Index{Table: col.Table, Columns: []string{col.Column}})
	}
	for _, workers := range []int{1, 2, 4} {
		record("CostBatch", workers, func(b *testing.B) {
			st.E.SetBatchWorkers(workers)
			defer st.E.SetBatchWorkers(0)
			for i := 0; i < b.N; i++ {
				st.E.ClearCache()
				if _, err := st.E.CostBatch(ctx, items, cfg, engine.ModeEstimated); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	if benchErr != nil {
		return benchErr
	}
	// Append to any existing results rather than overwriting: prior runs
	// (distinguished by their git_rev stamps) stay diffable against the
	// new ones. A file from before the provenance fields — or one that
	// does not parse — is treated as empty.
	var all []benchRecord
	if prev, err := os.ReadFile(out); err == nil {
		_ = json.Unmarshal(prev, &all)
	}
	all = append(all, results...)
	js, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(js, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s (%d total)\n", len(results), out, len(all))
	return nil
}
