// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp fig6 [-datasets tpch,tpcds,transaction] [-advisors Extend,SWIRL]
//	            [-methods Random,GRU,Seq2Seq,TRAP] [-scale quick|full] [-seed 42]
//	experiments -exp all   # every experiment at the chosen scale
//	experiments -bench [-bench-out BENCH_train.json]   # performance harness
//
// Experiments: fig1 tab1 fig6 fig7 tab4 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 fig16 fig17, plus "oscillation" (the Section V-B
// DB2Advis-oscillation observation, quantified). Output is a plain-text
// table per experiment,
// matching the rows/series the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/schema"
)

func main() {
	exp := flag.String("exp", "fig6", "experiment id (fig1, tab1, fig6..fig17, tab4, all)")
	datasets := flag.String("datasets", "tpch", "comma-separated: tpch, tpcds, transaction")
	advisors := flag.String("advisors", "Extend,DB2Advis,AutoAdmin,Drop,Relaxation,DTA,SWIRL,DRLindex,DQN,MCTS",
		"comma-separated advisor names for fig6")
	methods := flag.String("methods", "Random,GRU,Seq2Seq,TRAP", "comma-separated generation methods")
	scale := flag.String("scale", "quick", "quick or full")
	seed := flag.Int64("seed", 42, "random seed")
	genQueries := flag.Int("genqueries", 200, "queries to time for Table IV")
	format := flag.String("format", "text", "text or json")
	doBench := flag.Bool("bench", false, "run the performance harness instead of an experiment")
	benchOut := flag.String("bench-out", "BENCH_train.json", "output path for -bench JSON results")
	flag.Parse()

	if *doBench {
		if err := runBench(*benchOut, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: bench:", err)
			os.Exit(1)
		}
		return
	}

	emit := func(t *assess.Table) {
		if *format == "json" {
			js, err := t.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println(js)
			return
		}
		fmt.Println(t)
	}

	p := assess.QuickParams()
	if *scale == "full" {
		p = assess.FullParams()
	}

	suiteFor := func(name string) (*assess.Suite, error) {
		var s *schema.Schema
		switch name {
		case "tpch":
			s = bench.TPCH(p.ScaleDown)
		case "tpcds":
			s = bench.TPCDS(p.ScaleDown)
		case "transaction":
			s = bench.TRANSACTION(p.ScaleDown)
		default:
			return nil, fmt.Errorf("unknown dataset %q", name)
		}
		return assess.NewSuite(name, s, p, *seed)
	}

	dsNames := strings.Split(*datasets, ",")
	advNames := strings.Split(*advisors, ",")
	methodNames := strings.Split(*methods, ",")

	run := func(id string) error {
		switch id {
		case "fig1":
			var suites []*assess.Suite
			for _, d := range dsNames {
				s, err := suiteFor(d)
				if err != nil {
					return err
				}
				suites = append(suites, s)
			}
			emit(assess.Fig1(suites))
		case "tab1":
			s, err := suiteFor(dsNames[0])
			if err != nil {
				return err
			}
			t, err := assess.Tab1(s)
			if err != nil {
				return err
			}
			emit(t)
		case "fig6":
			var suites []*assess.Suite
			for _, d := range dsNames {
				s, err := suiteFor(d)
				if err != nil {
					return err
				}
				suites = append(suites, s)
			}
			_, t, err := assess.Fig6(suites, advNames, methodNames, core.AllConstraints)
			if err != nil {
				return err
			}
			emit(t)
		case "fig7", "tab4":
			s, err := suiteFor("tpch")
			if err != nil {
				return err
			}
			_, fig7, tab4, err := assess.Fig7Tab4(s, *genQueries)
			if err != nil {
				return err
			}
			if id == "fig7" {
				emit(fig7)
			} else {
				emit(tab4)
			}
		case "fig8":
			s, err := suiteFor("tpch")
			if err != nil {
				return err
			}
			_, t, err := assess.Fig8(s)
			if err != nil {
				return err
			}
			emit(t)
		case "fig9":
			s, err := suiteFor("tpch")
			if err != nil {
				return err
			}
			t, err := assess.Fig9(s, methodNames)
			if err != nil {
				return err
			}
			emit(t)
		case "fig10":
			t, err := assess.Fig10(p, nil, methodNames, *seed)
			if err != nil {
				return err
			}
			emit(t)
		case "fig11":
			s, err := suiteFor("tpch")
			if err != nil {
				return err
			}
			t, err := assess.Fig11(s, methodNames)
			if err != nil {
				return err
			}
			emit(t)
		case "fig12":
			s, err := suiteFor("tpch")
			if err != nil {
				return err
			}
			t, err := assess.Fig12(s, nil)
			if err != nil {
				return err
			}
			emit(t)
		case "fig13":
			s, err := suiteFor("tpch")
			if err != nil {
				return err
			}
			t, err := assess.Fig13(s, core.SharedTable)
			if err != nil {
				return err
			}
			emit(t)
		case "fig14":
			s, err := suiteFor("tpch")
			if err != nil {
				return err
			}
			t, err := assess.Fig14(s, core.SharedTable)
			if err != nil {
				return err
			}
			emit(t)
		case "fig15":
			s, err := suiteFor("tpch")
			if err != nil {
				return err
			}
			t, err := assess.Fig15(s, core.SharedTable)
			if err != nil {
				return err
			}
			emit(t)
		case "fig16":
			s, err := suiteFor("tpch")
			if err != nil {
				return err
			}
			scores, dist, err := assess.Fig16(s, 3)
			if err != nil {
				return err
			}
			emit(scores)
			emit(dist)
		case "oscillation":
			s, err := suiteFor(dsNames[0])
			if err != nil {
				return err
			}
			t, err := assess.OscillationTable(s, advNames, core.ValueOnly, 4)
			if err != nil {
				return err
			}
			emit(t)
		case "fig17":
			s, err := suiteFor("tpch")
			if err != nil {
				return err
			}
			tsne, frac, err := assess.Fig17(s, 3)
			if err != nil {
				return err
			}
			emit(tsne)
			emit(frac)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig1", "tab1", "fig6", "fig7", "tab4", "fig8", "fig9",
			"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
