// Command assess runs the robustness grid for chosen advisors on one
// dataset: the per-advisor IUDR of the four generation methods under one
// or all perturbation constraints (a configurable slice of Figure 6).
//
// Usage:
//
//	assess [-dataset tpch] [-advisors Extend,SWIRL] [-methods Random,TRAP]
//	       [-constraint all|value|column|shared] [-scale quick|full] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/schema"
)

func main() {
	dataset := flag.String("dataset", "tpch", "tpch, tpcds or transaction")
	advisors := flag.String("advisors", "Extend,DB2Advis,Drop,SWIRL", "comma-separated advisors")
	methods := flag.String("methods", "Random,TRAP", "comma-separated methods")
	constraint := flag.String("constraint", "shared", "value, column, shared or all")
	scale := flag.String("scale", "quick", "quick or full")
	seed := flag.Int64("seed", 42, "random seed")
	rlEpochs := flag.Int("rlepochs", 0, "override generator RL training epochs")
	episodes := flag.Int("episodes", 0, "override learned-advisor training episodes")
	flag.Parse()

	p := assess.QuickParams()
	if *scale == "full" {
		p = assess.FullParams()
	}
	if *rlEpochs > 0 {
		p.RLEpochs = *rlEpochs
	}
	if *episodes > 0 {
		p.AdvisorEpisodes = *episodes
	}
	var s *schema.Schema
	switch *dataset {
	case "tpch":
		s = bench.TPCH(p.ScaleDown)
	case "tpcds":
		s = bench.TPCDS(p.ScaleDown)
	case "transaction":
		s = bench.TRANSACTION(p.ScaleDown)
	default:
		fmt.Fprintf(os.Stderr, "assess: unknown dataset %q\n", *dataset)
		os.Exit(1)
	}
	var pcs []core.PerturbConstraint
	switch *constraint {
	case "value":
		pcs = []core.PerturbConstraint{core.ValueOnly}
	case "column":
		pcs = []core.PerturbConstraint{core.ColumnConsistent}
	case "shared":
		pcs = []core.PerturbConstraint{core.SharedTable}
	case "all":
		pcs = core.AllConstraints
	default:
		fmt.Fprintf(os.Stderr, "assess: unknown constraint %q\n", *constraint)
		os.Exit(1)
	}
	suite, err := assess.NewSuite(*dataset, s, p, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "assess:", err)
		os.Exit(1)
	}
	_, table, err := assess.Fig6([]*assess.Suite{suite},
		strings.Split(*advisors, ","), strings.Split(*methods, ","), pcs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "assess:", err)
		os.Exit(1)
	}
	fmt.Println(table)
}
