// Transaction OLTP: the banking scenario standing in for the paper's
// real-world TRANSACTION workload. A bank's DBA relies on a learned
// advisor (DRLindex) trained on today's transaction mix; TRAP probes how
// the recommendation quality holds up when business demand shifts the
// queries slightly — and compares against its heuristic baseline (Drop).
package main

import (
	"fmt"
	"log"

	trap "github.com/trap-repro/trap"
)

func main() {
	params := trap.Quick()
	params.RLEpochs = 6
	params.TestWorkloads = 8
	assessor, err := trap.NewAssessor("transaction", trap.Transaction(200), params, 13)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("banking OLTP robustness check (10 tables, 189 columns)")
	fmt.Println()
	for _, name := range []string{"Drop", "DRLindex"} {
		rep, err := assessor.AssessNamed(name, trap.ColumnConsistent)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s mean IUDR %.4f over %d workloads\n", name, rep.MeanIUDR, rep.N)
		shown := 0
		for _, p := range rep.Pairs {
			if p.NonSargable || shown >= 1 {
				continue
			}
			for i := range p.Orig.Items {
				o, q := p.Orig.Items[i].Query, p.Pert.Items[i].Query
				if trap.EditDistance(o, q) > 0 {
					fmt.Printf("  drifted query: %s\n", q)
					shown++
					break
				}
			}
		}
	}
	fmt.Println()
	fmt.Println("queries drift within the columns the bank already touches")
	fmt.Println("(ColumnConsistent), yet the advisors' index choices degrade —")
	fmt.Println("the robustness gap Section V-B of the paper quantifies.")
}
