// Advisor audit: implement your own index advisor against the trap
// Advisor interface and put it through the same adversarial robustness
// assessment as the paper's ten advisors — the intended downstream use
// of this library. Only the public trap API is used.
package main

import (
	"fmt"
	"log"
	"sort"

	trap "github.com/trap-repro/trap"
)

// FrequencyAdvisor is a deliberately naive custom advisor: index the
// most frequently filtered columns, ignoring what-if costs entirely.
// The audit below shows how brittle that is.
type FrequencyAdvisor struct {
	TopK int
}

// Name implements trap.Advisor.
func (f *FrequencyAdvisor) Name() string { return "FrequencyTopK" }

// Recommend implements trap.Advisor.
func (f *FrequencyAdvisor) Recommend(e *trap.Engine, w *trap.Workload, c trap.Constraint) (trap.Config, error) {
	counts := map[trap.ColumnRef]int{}
	for _, it := range w.Items {
		for _, p := range it.Query.Filters {
			counts[p.Col]++
		}
	}
	type kv struct {
		col trap.ColumnRef
		n   int
	}
	var ranked []kv
	for col, n := range counts {
		ranked = append(ranked, kv{col, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].col.String() < ranked[j].col.String()
	})
	var cfg trap.Config
	for _, r := range ranked {
		if f.TopK > 0 && len(cfg) >= f.TopK {
			break
		}
		ix := trap.Index{Table: r.col.Table, Columns: []string{r.col.Column}}
		if c.Fits(e.Schema(), cfg, ix) {
			cfg = cfg.Add(ix)
		}
	}
	return cfg, nil
}

func main() {
	assessor, err := trap.NewAssessor("tpch", trap.TPCH(200), trap.Quick(), 7)
	if err != nil {
		log.Fatal(err)
	}
	mine := &FrequencyAdvisor{TopK: 4}

	fmt.Println("auditing custom advisor", mine.Name(), "against the Extend reference")
	for _, pc := range []trap.PerturbConstraint{trap.ValueOnly, trap.ColumnConsistent, trap.SharedTable} {
		repMine, err := assessor.Assess(mine, pc)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := trap.AdvisorByName("Extend")
		if err != nil {
			log.Fatal(err)
		}
		repRef, err := assessor.Assess(ref, pc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s IUDR: %s %.4f (n=%d)   Extend %.4f (n=%d)\n",
			pc.String(), mine.Name(), repMine.MeanIUDR, repMine.N, repRef.MeanIUDR, repRef.N)
	}
	fmt.Println("\nhigher IUDR = less robust; a cost-blind advisor is easy prey for TRAP")
}
