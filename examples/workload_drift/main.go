// Workload drift: simulate the three real-world drift types of the
// paper's Table I on TPC-H and chart how much each degrades an advisor.
// This is the scenario the paper's introduction motivates: a retailer
// re-parameterizing template queries (ValueOnly), a customer re-sorting
// search results (ColumnConsistent), and an analyst exploring with new
// predicates (SharedTable).
package main

import (
	"fmt"
	"log"
	"strings"

	trap "github.com/trap-repro/trap"
)

func main() {
	params := trap.Quick()
	params.RLEpochs = 6
	assessor, err := trap.NewAssessor("tpch", trap.TPCH(200), params, 11)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("drift severity on TPC-H (advisor: AutoAdmin)")
	fmt.Println()
	type row struct {
		constraint trap.PerturbConstraint
		scenario   string
	}
	rows := []row{
		{trap.ValueOnly, "template re-parameterization (seasonal sales reports)"},
		{trap.ColumnConsistent, "result re-ordering (shoppers sorting by other columns)"},
		{trap.SharedTable, "exploratory analysis (new predicates & payloads)"},
	}
	var iudrs []float64
	for _, r := range rows {
		adv, err := trap.AdvisorByName("AutoAdmin")
		if err != nil {
			log.Fatal(err)
		}
		rep, err := assessor.Assess(adv, r.constraint)
		if err != nil {
			log.Fatal(err)
		}
		iudrs = append(iudrs, rep.MeanIUDR)
	}
	maxV := 0.0001
	for _, v := range iudrs {
		if v > maxV {
			maxV = v
		}
	}
	for i, r := range rows {
		barLen := int(iudrs[i] / maxV * 40)
		if barLen < 0 {
			barLen = 0
		}
		fmt.Printf("%-18s IUDR %7.4f  %s\n", r.constraint.String(), iudrs[i], strings.Repeat("#", barLen))
		fmt.Printf("%-18s %s\n\n", "", r.scenario)
	}
	fmt.Println("more flexible drifts expose larger performance loopholes,")
	fmt.Println("matching the ordering of Figure 6 in the paper.")
}
