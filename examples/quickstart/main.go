// Quickstart: assess the robustness of one index advisor on TPC-H in a
// few lines using the public trap API.
package main

import (
	"fmt"
	"log"

	trap "github.com/trap-repro/trap"
)

func main() {
	// A TPC-H instance (scale factor 1 divided by 200 keeps this instant).
	assessor, err := trap.NewAssessor("tpch", trap.TPCH(200), trap.Quick(), 42)
	if err != nil {
		log.Fatal(err)
	}

	// Assess the Extend advisor under the SharedTable drift: TRAP trains
	// an adversarial generator against it and measures the Index Utility
	// Decrease Ratio on perturbed workloads.
	report, err := assessor.AssessNamed("Extend", trap.SharedTable)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Extend on TPC-H, SharedTable perturbation:\n")
	fmt.Printf("  properly-operating workloads: %d\n", report.N)
	fmt.Printf("  mean IUDR:                    %.4f\n", report.MeanIUDR)
	fmt.Println()
	shown := 0
	for _, p := range report.Pairs {
		if shown >= 2 {
			break
		}
		if p.NonSargable {
			continue
		}
		shown++
		fmt.Printf("example %d (u=%.3f -> u'=%.3f, IUDR=%.3f):\n", shown, p.U, p.UPert, p.IUDR)
		for j := range p.Orig.Items {
			o, q := p.Orig.Items[j].Query, p.Pert.Items[j].Query
			if d := trap.EditDistance(o, q); d > 0 {
				fmt.Printf("  - %s\n  + %s\n", o, q)
			}
		}
	}
}
