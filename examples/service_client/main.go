// Example service_client starts trapd in-process, walks the HTTP API —
// parse, explain, advise — then submits an async assessment job and
// follows its progress live over the SSE stream
// (GET /v1/jobs/{id}/events) instead of polling. Halfway through it
// deliberately drops the connection and reconnects with Last-Event-ID
// to show lossless resume, then prints the advisor's IUDR plus a few
// metrics. It doubles as a smoke test for the streaming job path.
//
// Run with:
//
//	go run ./examples/service_client
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "service_client:", err)
		os.Exit(1)
	}
}

func run() error {
	// Shrink the quick parameters so the whole walkthrough finishes in
	// seconds; a real deployment runs `trapd -scale quick` or full.
	p := assess.QuickParams()
	p.Templates = 8
	p.TrainWorkloads = 3
	p.TestWorkloads = 3
	p.WorkloadSize = 4
	p.UtilitySamples = 300
	p.PretrainPairs = 4
	p.PretrainEpochs = 1
	p.RLEpochs = 3

	fmt.Println("building tpch suite (workloads + utility model)...")
	srv, err := service.NewServer(service.Config{
		Datasets: []string{"tpch"},
		Params:   p,
		Seed:     42,
		Workers:  2,
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("trapd listening on", ts.URL)

	// 1. Parse.
	var parsed struct {
		Query  string `json:"query"`
		Tokens int    `json:"tokens"`
	}
	sql := "SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_orderkey = 5"
	if err := post(ts.URL+"/v1/parse", map[string]any{"sql": sql}, &parsed); err != nil {
		return err
	}
	fmt.Printf("parsed (%d tokens): %s\n", parsed.Tokens, parsed.Query)

	// 2. Explain under a hypothetical index.
	var explained struct {
		EstimatedCost float64 `json:"estimatedCost"`
		RuntimeCost   float64 `json:"runtimeCost"`
	}
	err = post(ts.URL+"/v1/explain", map[string]any{
		"dataset": "tpch", "sql": sql, "indexes": []string{"lineitem(l_orderkey)"},
	}, &explained)
	if err != nil {
		return err
	}
	fmt.Printf("explain: what-if cost %.1f, runtime stand-in %.1f\n",
		explained.EstimatedCost, explained.RuntimeCost)

	// 3. Advise.
	var advised struct {
		Indexes           []string `json:"indexes"`
		WhatIfImprovement float64  `json:"whatIfImprovement"`
	}
	err = post(ts.URL+"/v1/advise", map[string]any{
		"dataset": "tpch", "advisor": "Extend",
		"queries": []string{sql, "SELECT orders.o_totalprice FROM orders WHERE orders.o_custkey = 7"},
	}, &advised)
	if err != nil {
		return err
	}
	fmt.Printf("advise: Extend recommends %v (what-if improvement %.1f%%)\n",
		advised.Indexes, 100*advised.WhatIfImprovement)

	// 4. Async robustness assessment: submit, then follow the live SSE
	// progress stream instead of polling. The stream carries state
	// transitions, per-epoch training progress and per-workload cell
	// completions, and ends with the result.
	var job service.Job
	err = post(ts.URL+"/v1/assess", map[string]any{
		"dataset": "tpch", "advisor": "Extend", "method": "TRAP", "constraint": "shared",
	}, &job)
	if err != nil {
		return err
	}
	fmt.Printf("assessment %s submitted (status %s); streaming progress...\n", job.ID, job.Status)
	eventsURL := ts.URL + "/v1/jobs/" + job.ID + "/events"

	// First connection: drop it on purpose after a couple of epoch
	// events to demonstrate reconnect semantics.
	var result *service.JobResult
	epochs := 0
	lastID, err := streamEvents(eventsURL, 0, func(ev string, e service.JobEvent) bool {
		printEvent(ev, e)
		if ev == "result" {
			result = e.Result
		}
		if ev == "epoch" {
			epochs++
		}
		return epochs < 2 // false drops the connection mid-stream
	})
	if err != nil {
		return err
	}
	if result == nil {
		fmt.Printf("  (connection dropped on purpose; resuming from Last-Event-ID %d)\n", lastID)
		_, err = streamEvents(eventsURL, lastID, func(ev string, e service.JobEvent) bool {
			printEvent(ev, e)
			if ev == "result" {
				result = e.Result
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	if result == nil {
		if err := get(ts.URL+"/v1/jobs/"+job.ID, &job); err != nil {
			return err
		}
		return fmt.Errorf("job ended %s: %s", job.Status, job.Error)
	}
	fmt.Printf("TRAP vs Extend on tpch: mean IUDR %.4f over %d workloads (%d pairs, %dms)\n",
		result.MeanIUDR, result.Workloads, result.Pairs, result.ElapsedMilli)

	// 5. A taste of /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Println("selected metrics:")
	for _, line := range strings.Split(string(body), "\n") {
		for _, want := range []string{
			"engine_whatif_calls_total", "engine_plan_cache_hit_ratio",
			"trap_rl_epochs_total", "trapd_jobs_done_total",
		} {
			if strings.HasPrefix(line, want) {
				fmt.Println(" ", line)
			}
		}
	}
	return nil
}

// streamEvents consumes the SSE stream at url, resuming after lastID
// when non-zero, and invokes f for each event. It returns when f asks
// to stop (simulating a dropped connection), or at EOF — the server
// closes the stream once the job is terminal and the backlog is sent.
// The returned ID is the last event seen, ready for Last-Event-ID.
func streamEvents(url string, lastID int64, f func(event string, e service.JobEvent) bool) (int64, error) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return lastID, err
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return lastID, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return lastID, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	var id int64
	var event string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": "): // heartbeat, ignore
		case strings.HasPrefix(line, "id: "):
			id, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var e service.JobEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				return lastID, fmt.Errorf("bad event payload: %w", err)
			}
			lastID = id
			if !f(event, e) {
				return lastID, nil
			}
		}
	}
	return lastID, sc.Err()
}

func printEvent(event string, e service.JobEvent) {
	switch event {
	case "state":
		fmt.Printf("  [%d] state: %s\n", e.Seq, e.Status)
	case "epoch":
		fmt.Printf("  [%d] training epoch %d done\n", e.Seq, e.Epoch)
	case "cell":
		if e.Workload != nil {
			fmt.Printf("  [%d] workload %d assessed (%d pairs)\n", e.Seq, *e.Workload, e.Pairs)
		}
	case "result":
		fmt.Printf("  [%d] result ready\n", e.Seq)
	}
}

func post(url string, body any, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return json.Unmarshal(raw, out)
}
