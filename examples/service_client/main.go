// Example service_client starts trapd in-process, walks the HTTP API —
// parse, explain, advise — then submits an async assessment job, polls
// it to completion and prints the advisor's IUDR plus a few metrics.
// It doubles as a smoke test for the async job path.
//
// Run with:
//
//	go run ./examples/service_client
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "service_client:", err)
		os.Exit(1)
	}
}

func run() error {
	// Shrink the quick parameters so the whole walkthrough finishes in
	// seconds; a real deployment runs `trapd -scale quick` or full.
	p := assess.QuickParams()
	p.Templates = 8
	p.TrainWorkloads = 3
	p.TestWorkloads = 3
	p.WorkloadSize = 4
	p.UtilitySamples = 300
	p.PretrainPairs = 4
	p.PretrainEpochs = 1
	p.RLEpochs = 1

	fmt.Println("building tpch suite (workloads + utility model)...")
	srv, err := service.NewServer(service.Config{
		Datasets: []string{"tpch"},
		Params:   p,
		Seed:     42,
		Workers:  2,
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("trapd listening on", ts.URL)

	// 1. Parse.
	var parsed struct {
		Query  string `json:"query"`
		Tokens int    `json:"tokens"`
	}
	sql := "SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_orderkey = 5"
	if err := post(ts.URL+"/v1/parse", map[string]any{"sql": sql}, &parsed); err != nil {
		return err
	}
	fmt.Printf("parsed (%d tokens): %s\n", parsed.Tokens, parsed.Query)

	// 2. Explain under a hypothetical index.
	var explained struct {
		EstimatedCost float64 `json:"estimatedCost"`
		RuntimeCost   float64 `json:"runtimeCost"`
	}
	err = post(ts.URL+"/v1/explain", map[string]any{
		"dataset": "tpch", "sql": sql, "indexes": []string{"lineitem(l_orderkey)"},
	}, &explained)
	if err != nil {
		return err
	}
	fmt.Printf("explain: what-if cost %.1f, runtime stand-in %.1f\n",
		explained.EstimatedCost, explained.RuntimeCost)

	// 3. Advise.
	var advised struct {
		Indexes           []string `json:"indexes"`
		WhatIfImprovement float64  `json:"whatIfImprovement"`
	}
	err = post(ts.URL+"/v1/advise", map[string]any{
		"dataset": "tpch", "advisor": "Extend",
		"queries": []string{sql, "SELECT orders.o_totalprice FROM orders WHERE orders.o_custkey = 7"},
	}, &advised)
	if err != nil {
		return err
	}
	fmt.Printf("advise: Extend recommends %v (what-if improvement %.1f%%)\n",
		advised.Indexes, 100*advised.WhatIfImprovement)

	// 4. Async robustness assessment: submit, then poll the job.
	var job service.Job
	err = post(ts.URL+"/v1/assess", map[string]any{
		"dataset": "tpch", "advisor": "Extend", "method": "TRAP", "constraint": "shared",
	}, &job)
	if err != nil {
		return err
	}
	fmt.Printf("assessment %s submitted (status %s); polling...\n", job.ID, job.Status)
	for job.Status == service.JobPending || job.Status == service.JobRunning {
		time.Sleep(200 * time.Millisecond)
		if err := get(ts.URL+"/v1/jobs/"+job.ID, &job); err != nil {
			return err
		}
	}
	if job.Status != service.JobDone {
		return fmt.Errorf("job ended %s: %s", job.Status, job.Error)
	}
	fmt.Printf("TRAP vs Extend on tpch: mean IUDR %.4f over %d workloads (%d pairs, %dms)\n",
		job.Result.MeanIUDR, job.Result.Workloads, job.Result.Pairs, job.Result.ElapsedMilli)

	// 5. A taste of /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Println("selected metrics:")
	for _, line := range strings.Split(string(body), "\n") {
		for _, want := range []string{
			"engine_whatif_calls_total", "engine_plan_cache_hit_ratio",
			"trap_rl_epochs_total", "trapd_jobs_done_total",
		} {
			if strings.HasPrefix(line, want) {
				fmt.Println(" ", line)
			}
		}
	}
	return nil
}

func post(url string, body any, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return json.Unmarshal(raw, out)
}
