module github.com/trap-repro/trap

go 1.22
